#include "moatlint/cxx_scan.hh"

#include <algorithm>
#include <cctype>
#include <set>

namespace moatlint::cxx
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Keywords that can precede '(' without naming a function. */
bool
isControlKeyword(const std::string &s)
{
    static const std::set<std::string> kKeywords = {
        "if",       "for",      "while",  "switch",   "catch",
        "return",   "sizeof",   "alignof", "alignas",  "decltype",
        "new",      "delete",   "throw",  "void",     "int",
        "char",     "bool",     "float",  "double",   "long",
        "short",    "unsigned", "signed", "auto",     "case",
        "static_cast",          "const_cast",
        "dynamic_cast",         "reinterpret_cast",
        "static_assert",        "noexcept",
        "operator", "co_return", "co_await", "co_yield"};
    return kKeywords.count(s) > 0;
}

bool
allCaps(const std::string &s)
{
    bool has_alpha = false;
    for (const char c : s) {
        if (std::islower(static_cast<unsigned char>(c)))
            return false;
        if (std::isalpha(static_cast<unsigned char>(c)))
            has_alpha = true;
    }
    return has_alpha;
}

} // namespace

std::string
maskSource(const std::string &src, unsigned flags, Spans *string_spans)
{
    std::string out = src;
    enum
    {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString
    } state = kCode;
    std::string raw_end; // ")delim\"" terminator of a raw string
    size_t span_begin = 0;

    const bool mask_line = (flags & kMaskLineComments) != 0;
    const bool mask_block = (flags & kMaskBlockComments) != 0;
    const bool mask_strings = (flags & kMaskStrings) != 0;

    auto blank = [&](size_t i) {
        if (out[i] != '\n')
            out[i] = ' ';
    };
    auto blankIf = [&](bool cond, size_t i) {
        if (cond)
            blank(i);
    };

    for (size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        const char next = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (state) {
        case kCode:
            if (c == '/' && next == '/') {
                state = kLineComment;
                blankIf(mask_line, i);
                blankIf(mask_line, i + 1);
                ++i;
            } else if (c == '/' && next == '*') {
                state = kBlockComment;
                blankIf(mask_block, i);
                blankIf(mask_block, i + 1);
                ++i;
            } else if (c == '"') {
                if (i > 0 && src[i - 1] == 'R') {
                    // Raw string: R"delim( ... )delim"
                    std::string delim;
                    size_t p = i + 1;
                    while (p < src.size() && src[p] != '(' &&
                           src[p] != '\n' && delim.size() < 16)
                        delim += src[p++];
                    if (p < src.size() && src[p] == '(') {
                        state = kRawString;
                        raw_end = ")" + delim + "\"";
                        span_begin = i;
                        break;
                    }
                }
                state = kString;
                span_begin = i;
            } else if (c == '\'') {
                // Digit separators (0x1'000) are not char literals.
                const char prev = i > 0 ? src[i - 1] : '\0';
                const bool separator =
                    std::isalnum(static_cast<unsigned char>(prev)) &&
                    std::isalnum(static_cast<unsigned char>(next));
                if (!separator)
                    state = kChar;
            }
            break;
        case kLineComment:
            if (c == '\n')
                state = kCode;
            else
                blankIf(mask_line, i);
            break;
        case kBlockComment:
            if (c == '*' && next == '/') {
                blankIf(mask_block, i);
                blankIf(mask_block, i + 1);
                ++i;
                state = kCode;
            } else {
                blankIf(mask_block, i);
            }
            break;
        case kString:
            if (c == '\\' && next != '\0') {
                blankIf(mask_strings, i);
                blankIf(mask_strings, i + 1);
                ++i;
            } else if (c == '"') {
                state = kCode;
                if (string_spans)
                    string_spans->push_back({span_begin, i + 1});
            } else {
                blankIf(mask_strings, i);
            }
            break;
        case kChar:
            if (c == '\\' && next != '\0') {
                blankIf(mask_strings, i);
                blankIf(mask_strings, i + 1);
                ++i;
            } else if (c == '\'') {
                state = kCode;
            } else {
                blankIf(mask_strings, i);
            }
            break;
        case kRawString:
            if (src.compare(i, raw_end.size(), raw_end) == 0) {
                i += raw_end.size() - 1;
                state = kCode;
                if (string_spans)
                    string_spans->push_back({span_begin, i + 1});
            } else {
                blankIf(mask_strings, i);
            }
            break;
        }
    }
    return out;
}

std::vector<size_t>
lineStartsOf(const std::string &text)
{
    std::vector<size_t> starts{0};
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n')
            starts.push_back(i + 1);
    }
    return starts;
}

int
lineOf(const std::vector<size_t> &starts, size_t offset)
{
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), offset);
    return static_cast<int>(it - starts.begin());
}

std::vector<Token>
tokenize(const std::string &code)
{
    std::vector<Token> out;
    const size_t n = code.size();
    size_t i = 0;
    while (i < n) {
        const char c = code[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        Token t;
        t.begin = i;
        if (identStart(c)) {
            size_t e = i;
            while (e < n && identChar(code[e]))
                ++e;
            t.kind = Token::kIdent;
            t.end = e;
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '.' && i + 1 < n &&
                    std::isdigit(static_cast<unsigned char>(
                        code[i + 1])))) {
            size_t e = i;
            while (e < n) {
                const char d = code[e];
                if (identChar(d) || d == '.' || d == '\'') {
                    // Exponents may carry a sign: 1e-9, 0x1p+3.
                    if ((d == 'e' || d == 'E' || d == 'p' ||
                         d == 'P') &&
                        e + 1 < n &&
                        (code[e + 1] == '+' || code[e + 1] == '-') &&
                        e > i)
                        ++e;
                    ++e;
                } else {
                    break;
                }
            }
            t.kind = Token::kNumber;
            t.end = e;
        } else if (c == '"') {
            size_t e = i + 1;
            while (e < n && code[e] != '"') {
                if (code[e] == '\\' && e + 1 < n)
                    ++e;
                ++e;
            }
            t.kind = Token::kString;
            t.end = e < n ? e + 1 : n;
        } else if (c == '\'') {
            size_t e = i + 1;
            while (e < n && code[e] != '\'') {
                if (code[e] == '\\' && e + 1 < n)
                    ++e;
                ++e;
            }
            t.kind = Token::kChar;
            t.end = e < n ? e + 1 : n;
        } else {
            t.kind = Token::kPunct;
            const char next = i + 1 < n ? code[i + 1] : '\0';
            if ((c == ':' && next == ':') || (c == '-' && next == '>'))
                t.end = i + 2;
            else
                t.end = i + 1;
        }
        t.text = code.substr(t.begin, t.end - t.begin);
        out.push_back(std::move(t));
        i = out.back().end;
    }
    return out;
}

namespace
{

/** Token-level declaration walker behind scanDecls(). */
class Scanner
{
  public:
    explicit Scanner(std::vector<Token> tokens)
        : t_(std::move(tokens))
    {
    }

    FileDecls run()
    {
        scanScope(0, t_.size(), "");
        return std::move(out_);
    }

  private:
    bool is(size_t i, const char *text) const
    {
        return i < t_.size() && t_[i].text == text;
    }

    bool isIdent(size_t i) const
    {
        return i < t_.size() && t_[i].kind == Token::kIdent;
    }

    /** Token index just past the group closer matching t_[open]. */
    size_t matchGroup(size_t open, const char *o, const char *c,
                      size_t e) const
    {
        int depth = 0;
        for (size_t i = open; i < e; ++i) {
            if (t_[i].text == o)
                ++depth;
            else if (t_[i].text == c && --depth == 0)
                return i + 1;
        }
        return e; // unbalanced: clamp to the scope end
    }

    /** Token index just past the next depth-0 ';' (brace-aware). */
    size_t skipToSemi(size_t i, size_t e) const
    {
        while (i < e) {
            if (is(i, "{") || is(i, "(") || is(i, "[")) {
                i = matchGroup(i, t_[i].text.c_str(),
                               t_[i].text == "{"   ? "}"
                               : t_[i].text == "(" ? ")"
                                                   : "]",
                               e);
                continue;
            }
            if (is(i, ";"))
                return i + 1;
            ++i;
        }
        return e;
    }

    /** Token index just past the '>' matching a '<' at @p open. */
    size_t skipAngles(size_t open, size_t e) const
    {
        int depth = 0;
        for (size_t i = open; i < e; ++i) {
            if (is(i, "<")) {
                ++depth;
            } else if (is(i, ">")) {
                if (--depth == 0)
                    return i + 1;
            } else if (is(i, ";") || is(i, "{")) {
                return i; // not a template argument list after all
            }
        }
        return e;
    }

    static std::string qualify(const std::string &qual,
                               const std::string &name)
    {
        return qual.empty() ? name : qual + "::" + name;
    }

    /**
     * Try to read a function whose parameter list opens at @p open.
     * On success records the declaration/definition and returns the
     * token index to resume at; returns 0 when the tokens do not form
     * a function (the caller then just skips the parenthesis group).
     */
    size_t tryFunction(size_t open, size_t e, const std::string &qual)
    {
        // Name chain directly before '(': ident (:: ident)* reversed.
        if (open == 0 || !isIdent(open - 1))
            return 0;
        size_t p = open - 1;
        std::string chain = t_[p].text;
        const std::string name = t_[p].text;
        while (p >= 2 && is(p - 1, "::") && isIdent(p - 2)) {
            p -= 2;
            chain = t_[p].text + "::" + chain;
        }
        if (isControlKeyword(name))
            return 0;
        const size_t head = t_[p].begin;

        const size_t close = matchGroup(open, "(", ")", e);
        // Trailer: consume qualifiers, init lists, trailing return
        // types... up to the body '{' or a terminating ';'.
        bool seen_colon = false;
        std::string prev;
        for (size_t j = close; j < e;) {
            const std::string &tx = t_[j].text;
            if (tx == "{") {
                if (seen_colon && (prev.empty() ||
                                   identChar(prev.back()))) {
                    // Brace init inside a constructor init list
                    // (`: x_{1}`), not the body yet.
                    j = matchGroup(j, "{", "}", e);
                    prev = "}";
                    continue;
                }
                const size_t body = matchGroup(j, "{", "}", e);
                FunctionDecl fn;
                fn.name = name;
                fn.qualified = qualify(qual, chain);
                fn.head = head;
                fn.body_begin = t_[j].begin;
                fn.body_end = body <= e && body > 0
                                  ? t_[body - 1].end
                                  : t_[e - 1].end;
                fn.defined = true;
                out_.functions.push_back(std::move(fn));
                return body;
            }
            if (tx == ";" || tx == "=") {
                // Declaration (`;`, `= default;`, `= delete;`, pure).
                FunctionDecl fn;
                fn.name = name;
                fn.qualified = qualify(qual, chain);
                fn.head = head;
                fn.defined = false;
                out_.functions.push_back(std::move(fn));
                return tx == ";" ? j + 1 : skipToSemi(j, e);
            }
            if (tx == "(") {
                j = matchGroup(j, "(", ")", e);
                prev = ")";
                continue;
            }
            if (t_[j].kind == Token::kIdent || tx == "::" ||
                tx == "->" || tx == "," || tx == "&" || tx == "*" ||
                tx == "<" || tx == ">" || tx == "[" || tx == "]" ||
                t_[j].kind == Token::kNumber ||
                t_[j].kind == Token::kString) {
                prev = tx;
                ++j;
                continue;
            }
            if (tx == ":") {
                seen_colon = true;
                prev = tx;
                ++j;
                continue;
            }
            return 0; // something a function head never contains
        }
        return 0;
    }

    /** Handle `struct`/`class` at token @p i; returns resume index,
     *  or 0 when it is not a named definition (caller advances). */
    size_t handleStruct(size_t i, size_t e, const std::string &qual,
                        StructDecl **opened)
    {
        *opened = nullptr;
        size_t j = i + 1;
        while (j < e && is(j, "[")) // [[attributes]]
            j = matchGroup(j, "[", "]", e);
        if (!isIdent(j))
            return 0; // anonymous struct or elaborated type use
        const std::string name = t_[j].text;
        size_t k = j + 1;
        while (k < e && !is(k, "{") && !is(k, ";")) {
            if (is(k, "(")) {
                k = matchGroup(k, "(", ")", e);
                continue;
            }
            if (is(k, "<")) {
                k = skipAngles(k, e);
                continue;
            }
            if (is(k, "=") || is(k, ","))
                return 0; // `struct X *p = ...`: a variable, not a def
            ++k;
        }
        if (k >= e || is(k, ";"))
            return k < e ? k + 1 : e; // forward declaration
        const size_t body = matchGroup(k, "{", "}", e);
        StructDecl s;
        s.name = name;
        s.qualified = qualify(qual, name);
        s.head = t_[i].begin;
        s.body_begin = t_[k].begin;
        s.body_end = body > 0 && body <= e ? t_[body - 1].end
                                           : t_[e - 1].end;
        scanStructBody(s, k + 1, body > 0 ? body - 1 : e);
        out_.structs.push_back(std::move(s));
        *opened = &out_.structs.back();
        return body;
    }

    void scanScope(size_t b, size_t e, const std::string &qual)
    {
        size_t i = b;
        while (i < e) {
            if (is(i, "namespace")) {
                size_t j = i + 1;
                while (j < e && !is(j, "{") && !is(j, ";"))
                    ++j;
                if (j < e && is(j, "{")) {
                    const size_t k = matchGroup(j, "{", "}", e);
                    scanScope(j + 1, k > 0 ? k - 1 : e, qual);
                    i = k;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if (is(i, "template")) {
                i = (i + 1 < e && is(i + 1, "<"))
                        ? skipAngles(i + 1, e)
                        : i + 1;
                continue;
            }
            if (is(i, "using") || is(i, "typedef") ||
                is(i, "static_assert")) {
                i = skipToSemi(i, e);
                continue;
            }
            if (is(i, "enum")) {
                size_t j = i + 1;
                while (j < e && !is(j, "{") && !is(j, ";"))
                    ++j;
                i = (j < e && is(j, "{"))
                        ? skipToSemi(matchGroup(j, "{", "}", e) - 1, e)
                        : j + 1;
                continue;
            }
            if (is(i, "struct") || is(i, "class")) {
                StructDecl *opened = nullptr;
                const size_t r = handleStruct(i, e, qual, &opened);
                if (r > 0) {
                    i = opened ? skipToSemi(r, e) : r;
                    continue;
                }
                ++i;
                continue;
            }
            if (is(i, "=")) {
                i = skipToSemi(i, e); // initializer: calls are not fns
                continue;
            }
            if (is(i, "(")) {
                const size_t r = tryFunction(i, e, qual);
                i = r > 0 ? r : matchGroup(i, "(", ")", e);
                continue;
            }
            if (is(i, "{")) {
                i = matchGroup(i, "{", "}", e); // stray block: skip
                continue;
            }
            ++i;
        }
    }

    void scanStructBody(StructDecl &s, size_t b, size_t e)
    {
        size_t i = b;
        std::string last;        // field-name candidate
        std::string second_last; // type-ish identifier before it
        bool frozen = false;
        bool has_eq = false;
        bool is_static = false;
        auto reset = [&] {
            last.clear();
            second_last.clear();
            frozen = false;
            has_eq = false;
            is_static = false;
        };
        while (i < e) {
            if (isIdent(i)) {
                const std::string &tx = t_[i].text;
                if ((tx == "public" || tx == "private" ||
                     tx == "protected") &&
                    is(i + 1, ":")) {
                    i += 2;
                    reset();
                    continue;
                }
                if (tx == "using" || tx == "typedef" ||
                    tx == "friend" || tx == "static_assert") {
                    i = skipToSemi(i, e);
                    reset();
                    continue;
                }
                if (tx == "struct" || tx == "class") {
                    StructDecl *opened = nullptr;
                    const size_t r =
                        handleStruct(i, e, s.qualified, &opened);
                    if (r > 0 && opened) {
                        const std::string nested = opened->name;
                        // `} name;` after the body: a field of the
                        // nested type.
                        if (isIdent(r) && is(r + 1, ";")) {
                            s.fields.push_back(
                                {t_[r].text, nested, t_[r].begin});
                            i = r + 2;
                        } else {
                            i = skipToSemi(r, e);
                        }
                        reset();
                        continue;
                    }
                    i = r > 0 ? r : i + 1;
                    reset();
                    continue;
                }
                if (tx == "enum") {
                    size_t j = i + 1;
                    while (j < e && !is(j, "{") && !is(j, ";"))
                        ++j;
                    i = (j < e && is(j, "{"))
                            ? skipToSemi(matchGroup(j, "{", "}", e) - 1,
                                         e)
                            : j + 1;
                    reset();
                    continue;
                }
                if (tx == "static") {
                    is_static = true;
                    ++i;
                    continue;
                }
                if (!frozen && allCaps(tx) && is(i + 1, "(")) {
                    // Annotation macro (GUARDED_BY(mu_), EXCLUDES(..)):
                    // skip without disturbing the field candidate.
                    i = matchGroup(i + 1, "(", ")", e);
                    continue;
                }
                if (!frozen) {
                    second_last = last;
                    last = tx;
                }
                ++i;
                continue;
            }
            if (is(i, "(")) {
                if (!has_eq) {
                    const size_t r = tryFunction(i, e, s.qualified);
                    if (r > 0) {
                        i = r;
                        reset();
                        continue;
                    }
                }
                i = matchGroup(i, "(", ")", e);
                continue;
            }
            if (is(i, "=")) {
                has_eq = true;
                frozen = true;
                ++i;
                continue;
            }
            if (is(i, "[")) {
                if (!last.empty())
                    frozen = true; // array extent after the name
                i = matchGroup(i, "[", "]", e);
                continue;
            }
            if (is(i, "{")) {
                if (!has_eq)
                    frozen = true; // brace init: name already seen
                i = matchGroup(i, "{", "}", e);
                continue;
            }
            if (is(i, ":")) {
                frozen = true; // bitfield width
                ++i;
                continue;
            }
            if (is(i, ";")) {
                if (!last.empty() && !is_static)
                    s.fields.push_back({last, second_last, fieldAt(i)});
                reset();
                ++i;
                continue;
            }
            ++i;
        }
    }

    /** Offset of the recorded field name nearest before token @p semi
     *  (the name token was consumed during the statement walk). */
    size_t fieldAt(size_t semi) const
    {
        // Walk back to the name token so the field's line is the
        // declaration line even when the initializer spans lines.
        for (size_t j = semi; j-- > 0;) {
            if (t_[j].kind == Token::kIdent)
                return t_[j].begin;
            if (t_[j].text == ";" || t_[j].text == "}")
                break;
        }
        return semi < t_.size() ? t_[semi].begin : 0;
    }

    std::vector<Token> t_;
    FileDecls out_;
};

} // namespace

FileDecls
scanDecls(const std::string &code)
{
    return Scanner(tokenize(code)).run();
}

std::vector<size_t>
identRefs(const std::string &code, const std::string &name)
{
    std::vector<size_t> hits;
    size_t at = 0;
    while ((at = code.find(name, at)) != std::string::npos) {
        const char prev = at > 0 ? code[at - 1] : '\0';
        const size_t end = at + name.size();
        const char post = end < code.size() ? code[end] : '\0';
        if (!identChar(prev) && prev != '.' && prev != '>' &&
            !identChar(post))
            hits.push_back(at);
        at = end;
    }
    return hits;
}

std::vector<size_t>
memberRefs(const std::string &code, const std::string &name)
{
    std::vector<size_t> hits;
    size_t at = 0;
    while ((at = code.find(name, at)) != std::string::npos) {
        const size_t end = at + name.size();
        const char prev = at > 0 ? code[at - 1] : '\0';
        const char post = end < code.size() ? code[end] : '\0';
        // `1.f` is a float literal, not a member access: a dot only
        // counts when whatever precedes it is not a numeric literal.
        bool dot = prev == '.' && !(at > 1 && code[at - 2] == '.');
        if (dot && at > 1 &&
            std::isdigit(static_cast<unsigned char>(code[at - 2]))) {
            size_t rb = at - 2;
            while (rb > 0 && identChar(code[rb - 1]))
                --rb;
            dot = !std::isdigit(static_cast<unsigned char>(code[rb]));
        }
        const bool arrow =
            prev == '>' && at > 1 && code[at - 2] == '-';
        if ((dot || arrow) && !identChar(post))
            hits.push_back(at);
        at = end;
    }
    return hits;
}

std::vector<std::string>
calledNames(const std::string &body)
{
    std::vector<std::string> names;
    const size_t n = body.size();
    size_t i = 0;
    while (i < n) {
        if (!identStart(body[i])) {
            ++i;
            continue;
        }
        const size_t b = i;
        while (i < n && identChar(body[i]))
            ++i;
        const char prev = b > 0 ? body[b - 1] : '\0';
        if (prev == '.' || identChar(prev))
            continue; // member call or mid-identifier
        if (prev == '>' && b > 1 && body[b - 2] == '-')
            continue; // ptr->call()
        size_t p = i;
        while (p < n &&
               std::isspace(static_cast<unsigned char>(body[p])))
            ++p;
        if (p >= n || body[p] != '(')
            continue;
        const std::string name = body.substr(b, i - b);
        if (!isControlKeyword(name))
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

} // namespace moatlint::cxx
