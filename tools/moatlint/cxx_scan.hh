/**
 * @file
 * Comment/string-aware C++ tokenizer and light declaration scanner.
 *
 * The second layer of moatlint: where lint.cc's rules are textual
 * (masked-substring scans), the keylint pass needs real structure --
 * which struct has which fields, where each function's body begins and
 * ends, across header/impl pairs. This scanner provides exactly that
 * much and no more: a masking pass that blanks comments and/or string
 * bodies while preserving every offset and newline, a token stream,
 * and a declaration walk that enumerates struct/class fields (nested
 * structs included, with qualified names like "ResultStore::Config")
 * and function definitions/declarations with their body spans.
 *
 * It is deliberately not a C++ parser: templates are skipped, bodies
 * are treated as opaque spans, overload sets collapse to names, and
 * macros are only recognized by the ALL_CAPS-before-'(' convention
 * (GUARDED_BY(mu_) on a field must not eat the field). That is enough
 * for key-coverage reasoning on the repo's config structs, runs in
 * milliseconds, and keeps moatlint toolchain-free.
 */

#ifndef MOATLINT_CXX_SCAN_HH
#define MOATLINT_CXX_SCAN_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace moatlint::cxx
{

/** Character spans (begin, end offsets) in a file's raw text. */
using Spans = std::vector<std::pair<size_t, size_t>>;

/** What maskSource() blanks (newlines always survive). */
enum MaskFlags : unsigned
{
    kMaskLineComments = 1u << 0,
    kMaskBlockComments = 1u << 1,
    kMaskStrings = 1u << 2, // string/char literal bodies (quotes kept)
    kMaskComments = kMaskLineComments | kMaskBlockComments,
};

/**
 * Copy of @p src with the selected regions replaced by spaces,
 * newlines preserved, so offsets and line numbers stay valid in every
 * variant. The comment/string state machine always runs in full (a
 * quote inside a comment never opens a string, and vice versa);
 * @p flags only selects what gets blanked. When @p string_spans is
 * non-null it receives the extent of every string literal that is
 * real code (not inside a comment).
 */
std::string maskSource(const std::string &src, unsigned flags,
                       Spans *string_spans = nullptr);

/** Offsets where each 1-based line starts. */
std::vector<size_t> lineStartsOf(const std::string &text);

/** 1-based line of @p offset given lineStartsOf() @p starts. */
int lineOf(const std::vector<size_t> &starts, size_t offset);

/** One lexical token (offsets into the scanned text). */
struct Token
{
    enum Kind
    {
        kIdent,
        kNumber,
        kString,
        kChar,
        kPunct
    };
    Kind kind = kPunct;
    size_t begin = 0;
    size_t end = 0; // one past the last character
    std::string text;
};

/**
 * Token stream of @p code, which must already have comments masked
 * (scanDecls() feeds it the comments+strings-masked variant). "::" and
 * "->" are single punctuation tokens; every other operator is one
 * character per token.
 */
std::vector<Token> tokenize(const std::string &code);

/** One data member of a struct/class. */
struct FieldDecl
{
    std::string name;
    /** Last type-ish identifier before the name ("CoAttackScenario"
     *  for `CoAttackScenario attack{};`); "" when indeterminate. */
    std::string type;
    /** Offset of the name token in the scanned text. */
    size_t offset = 0;
};

/** One struct/class with a body. */
struct StructDecl
{
    std::string name;
    /** Name qualified by enclosing structs ("ResultStore::Config");
     *  namespaces are not folded in. */
    std::string qualified;
    /** Offset of the `struct`/`class` keyword. */
    size_t head = 0;
    /** Body span: offset of '{' to one past '}'. */
    size_t body_begin = 0;
    size_t body_end = 0;
    std::vector<FieldDecl> fields;
};

/** One function definition or declaration. */
struct FunctionDecl
{
    /** Unqualified name. */
    std::string name;
    /** As written: "foldKey" for a free/inline member definition in
     *  its class, "ResultStore::foldKey" for an out-of-class one. */
    std::string qualified;
    /** Offset of the (first) name token. */
    size_t head = 0;
    /** Body span (offset of '{' to one past '}'); 0,0 when not
     *  defined here. */
    size_t body_begin = 0;
    size_t body_end = 0;
    bool defined = false;
};

/** Everything the declaration walk found in one file. */
struct FileDecls
{
    std::vector<StructDecl> structs;
    std::vector<FunctionDecl> functions;
};

/** Scan @p code (comments AND strings masked) for declarations. */
FileDecls scanDecls(const std::string &code);

/**
 * Offsets of qualified-or-plain references to identifier @p name in
 * @p code: the preceding character may be ':' but not an identifier
 * character, '.', or '>' (member accesses are excluded).
 */
std::vector<size_t> identRefs(const std::string &code,
                              const std::string &name);

/** Offsets of member references `.name` / `->name` in @p code. */
std::vector<size_t> memberRefs(const std::string &code,
                               const std::string &name);

/**
 * Names called in @p body (identifier directly followed by '(' after
 * optional spaces), qualified calls included by their last component,
 * member calls (`x.f()`) and control keywords excluded. Sorted,
 * deduplicated.
 */
std::vector<std::string> calledNames(const std::string &body);

} // namespace moatlint::cxx

#endif // MOATLINT_CXX_SCAN_HH
