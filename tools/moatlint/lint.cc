#include "moatlint/lint.hh"

#include "moatlint/cxx_scan.hh"
#include "moatlint/keylint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

namespace moatlint
{

namespace
{

// ------------------------------------------------------------ masking

// The comment/string state machine and line arithmetic moved to
// cxx_scan (shared with the keylint semantic pass); the textual rules
// keep their historical two-variant view of a file.
using cxx::lineOf;
using cxx::lineStartsOf;
using cxx::Spans;

std::string
maskSource(const std::string &src, bool mask_strings,
           Spans *string_spans = nullptr)
{
    const unsigned flags =
        mask_strings ? cxx::kMaskComments | cxx::kMaskStrings
                     : cxx::kMaskComments;
    return cxx::maskSource(src, flags, string_spans);
}

// ------------------------------------------------------- suppressions

struct Suppression
{
    int line = 0;        // line the comment sits on
    int target = 0;      // line it suppresses
    std::string rule;
    std::string justification;
    bool valid = false;
};

const std::regex &
allowRe()
{
    static const std::regex re(
        R"(//\s*moatlint:\s*allow\(([A-Za-z0-9_-]+)\)\s*:?[ \t]*(.*))");
    return re;
}

/** A moatlint directive of any kind (allow, key-source, ...). */
const std::regex &
directiveRe()
{
    static const std::regex re(R"(//\s*moatlint:)");
    return re;
}

/**
 * Parse suppressions from @p text, which must be the raw source with
 * block comments and string bodies masked (line comments kept): an
 * allow() example inside a doc block or a fixture string literal is
 * not a suppression. Lines carrying a moatlint: directive that is
 * neither an allow() nor a key annotation (keylint validates those)
 * are reported through @p bad_directives.
 */
std::vector<Suppression>
parseSuppressions(const std::string &text,
                  std::vector<int> *bad_directives)
{
    std::vector<Suppression> sups;
    std::istringstream is(text);
    std::string line;
    std::vector<bool> comment_lines; // whole-line comments, 1-based
    int n = 0;
    while (std::getline(is, line)) {
        ++n;
        const size_t first = line.find_first_not_of(" \t");
        comment_lines.push_back(first != std::string::npos &&
                                line.compare(first, 2, "//") == 0);
        if (line.find("moatlint:") == std::string::npos)
            continue;
        std::smatch m;
        if (!std::regex_search(line, m, allowRe())) {
            if (bad_directives &&
                std::regex_search(line, directiveRe()) &&
                !keyDirectiveLine(line))
                bad_directives->push_back(n);
            continue;
        }
        Suppression s;
        s.line = n;
        s.rule = m[1];
        s.justification = m[2];
        while (!s.justification.empty() &&
               std::isspace(
                   static_cast<unsigned char>(s.justification.back())))
            s.justification.pop_back();
        const std::string before = m.prefix();
        const bool standalone =
            before.find_first_not_of(" \t") == std::string::npos;
        s.target = standalone ? n + 1 : n;
        s.valid = ruleKnown(s.rule) && !s.justification.empty();
        sups.push_back(s);
    }
    // A standalone allow() covers the first following non-comment
    // line, so stacked suppressions and multi-line justification
    // comments all reach past each other to the code below them.
    for (auto &s : sups) {
        if (s.target == s.line)
            continue;
        int t = s.target;
        while (t <= static_cast<int>(comment_lines.size()) &&
               comment_lines[t - 1])
            ++t;
        s.target = t;
    }
    return sups;
}

// ------------------------------------------------------------ helpers

/** Whether @p path contains directory segment @p dir (e.g. "sim"). */
bool
inDir(const std::string &path, const std::string &dir)
{
    const std::string mid = "/" + dir + "/";
    if (path.find(mid) != std::string::npos)
        return true;
    const std::string prefix = dir + "/";
    return path.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Occurrences of identifier-like token @p name in @p text that start a
 * qualified-or-plain reference: the preceding character may be ':'
 * (std::rand, ::rand) but not an identifier character, '.', or '>'
 * (object.member / ptr->member are someone else's functions).
 */
std::vector<size_t>
tokenRefs(const std::string &text, const std::string &name)
{
    std::vector<size_t> hits;
    size_t at = 0;
    while ((at = text.find(name, at)) != std::string::npos) {
        const char prev = at > 0 ? text[at - 1] : '\0';
        const size_t end = at + name.size();
        const char post = end < text.size() ? text[end] : '\0';
        if (!identChar(prev) && prev != '.' && prev != '>' &&
            !identChar(post))
            hits.push_back(at);
        at = end;
    }
    return hits;
}

/** First non-space offset at or after @p at. */
size_t
skipSpace(const std::string &text, size_t at)
{
    while (at < text.size() &&
           std::isspace(static_cast<unsigned char>(text[at])))
        ++at;
    return at;
}

/** Whether a '(' follows (spaces allowed) -- i.e. the token is called. */
bool
calledAt(const std::string &text, size_t end_of_token)
{
    const size_t p = skipSpace(text, end_of_token);
    return p < text.size() && text[p] == '(';
}

/**
 * Offset just past the '>' matching the '<' at @p open (which must
 * point at '<'), or npos. '>' preceded by '-' (the arrow operator)
 * does not close.
 */
size_t
matchAngle(const std::string &text, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < text.size(); ++i) {
        if (text[i] == '<') {
            ++depth;
        } else if (text[i] == '>' && (i == 0 || text[i - 1] != '-')) {
            if (--depth == 0)
                return i + 1;
        } else if (text[i] == ';' || text[i] == '{') {
            break; // a declaration never spans these
        }
    }
    return std::string::npos;
}

/** Offset just past the matching close of the bracket at @p open. */
size_t
matchBracket(const std::string &text, size_t open, char o, char c)
{
    int depth = 0;
    for (size_t i = open; i < text.size(); ++i) {
        if (text[i] == o) {
            ++depth;
        } else if (text[i] == c) {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

struct ParsedFile
{
    std::string path; // display path (used in findings and scoping)
    std::string raw;
    std::string code;      // comments and literal bodies masked
    std::string with_strings; // comments masked, literals kept
    Spans string_spans;    // literal extents within raw/with_strings
    std::vector<size_t> lines;
    std::vector<Suppression> sups;
    std::vector<int> bad_directives; // unknown moatlint: lines
};

ParsedFile
parseFile(const std::string &path, const std::string &content)
{
    ParsedFile f;
    f.path = path;
    f.raw = content;
    f.code = maskSource(content, true, &f.string_spans);
    f.with_strings = maskSource(content, false);
    f.lines = lineStartsOf(content);
    const std::string sup_view = cxx::maskSource(
        content, cxx::kMaskBlockComments | cxx::kMaskStrings);
    f.sups = parseSuppressions(sup_view, &f.bad_directives);
    return f;
}

void
add(std::vector<Finding> &out, const ParsedFile &f, size_t offset,
    const std::string &rule, const std::string &message)
{
    out.push_back({f.path, lineOf(f.lines, offset), rule, message,
                   false, ""});
}

// -------------------------------------------------------------- rules

void
ruleStdHash(const ParsedFile &f, std::vector<Finding> &out)
{
    for (size_t at : tokenRefs(f.code, "std::hash")) {
        const size_t p = skipSpace(f.code, at + 9);
        if (p < f.code.size() && f.code[p] == '<')
            add(out, f, at, "std-hash",
                "std::hash is implementation-defined and varies across "
                "stdlibs; derive seeds from FNV-1a cell keys "
                "(common/hash.hh stableHash64/hashCombine)");
    }
}

void
ruleLibcRand(const ParsedFile &f, std::vector<Finding> &out)
{
    static const char *const kCalls[] = {"rand",    "srand",  "rand_r",
                                         "drand48", "lrand48", "mrand48",
                                         "random",  "srandom"};
    for (const char *name : kCalls) {
        for (size_t at : tokenRefs(f.code, name)) {
            if (calledAt(f.code, at + std::string(name).size()))
                add(out, f, at, "libc-rand",
                    std::string(name) +
                        "() draws from global libc state; use "
                        "common/rng.hh seeded from a stable cell key");
        }
    }
    static const char *const kTypes[] = {"std::random_device",
                                         "random_shuffle"};
    for (const char *name : kTypes) {
        for (size_t at : tokenRefs(f.code, name))
            add(out, f, at, "libc-rand",
                std::string(name) +
                    " is non-reproducible; use common/rng.hh seeded "
                    "from a stable cell key");
    }
}

void
ruleWallClock(const ParsedFile &f, std::vector<Finding> &out)
{
    static const char *const kClocks[] = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "utc_clock",    "file_clock",   "tai_clock",
        "gps_clock"};
    for (const char *name : kClocks) {
        for (size_t at : tokenRefs(f.code, name))
            add(out, f, at, "wall-clock",
                std::string(name) +
                    " reads host time; simulation time is "
                    "common/time.hh picoseconds (results must not "
                    "depend on when or how fast they ran)");
    }
    static const char *const kCalls[] = {
        "time",         "gettimeofday", "clock_gettime", "clock",
        "timespec_get", "localtime",    "gmtime",        "mktime",
        "ctime",        "asctime",      "ftime"};
    for (const char *name : kCalls) {
        for (size_t at : tokenRefs(f.code, name)) {
            if (calledAt(f.code, at + std::string(name).size()))
                add(out, f, at, "wall-clock",
                    std::string(name) +
                        "() reads host wall-clock state; simulation "
                        "time is common/time.hh picoseconds");
        }
    }
}

/** Identifiers declared as std::unordered_{map,set} in @p code. */
std::vector<std::string>
unorderedDecls(const std::string &code)
{
    std::vector<std::string> names;
    for (const char *token :
         {"std::unordered_map", "std::unordered_set"}) {
        for (size_t at : tokenRefs(code, token)) {
            size_t p = skipSpace(code, at + std::string(token).size());
            if (p >= code.size() || code[p] != '<')
                continue;
            p = matchAngle(code, p);
            if (p == std::string::npos)
                continue;
            // Skip declarator decorations: &, *, const, whitespace.
            for (;;) {
                p = skipSpace(code, p);
                if (p < code.size() &&
                    (code[p] == '&' || code[p] == '*')) {
                    ++p;
                } else if (code.compare(p, 6, "const ") == 0) {
                    p += 6;
                } else {
                    break;
                }
            }
            size_t e = p;
            while (e < code.size() && identChar(code[e]))
                ++e;
            if (e > p)
                names.push_back(code.substr(p, e - p));
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

void
ruleUnorderedIter(const ParsedFile &f,
                  const std::vector<std::string> &extra,
                  std::vector<Finding> &out)
{
    std::vector<std::string> names = unorderedDecls(f.code);
    names.insert(names.end(), extra.begin(), extra.end());
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    if (names.empty())
        return;

    std::set<std::pair<int, std::string>> seen; // (line, name) dedupe
    auto flag = [&](size_t offset, const std::string &name) {
        const int line = lineOf(f.lines, offset);
        if (!seen.insert({line, name}).second)
            return;
        add(out, f, offset, "unordered-iter",
            "iteration over std::unordered container '" + name +
                "' is in unspecified order; iterate a sorted copy, or "
                "suppress with a justification if the loop is "
                "order-invariant (commutative accumulation only)");
    };

    // Range-for over a tracked name: for (... : name)
    size_t at = 0;
    while ((at = f.code.find("for", at)) != std::string::npos) {
        const size_t kw = at;
        at += 3;
        if ((kw > 0 && identChar(f.code[kw - 1])) ||
            identChar(f.code[kw + 3]))
            continue;
        const size_t open = skipSpace(f.code, kw + 3);
        if (open >= f.code.size() || f.code[open] != '(')
            continue;
        const size_t close = matchBracket(f.code, open, '(', ')');
        if (close == std::string::npos)
            continue;
        const std::string head =
            f.code.substr(open + 1, close - open - 2);
        if (head.find(';') != std::string::npos)
            continue; // classic for, not range-for
        const size_t colon = head.rfind(':');
        if (colon == std::string::npos ||
            (colon > 0 && head[colon - 1] == ':'))
            continue;
        std::string range = head.substr(colon + 1);
        const size_t b = range.find_first_not_of(" \t\n");
        const size_t e = range.find_last_not_of(" \t\n");
        if (b == std::string::npos)
            continue;
        range = range.substr(b, e - b + 1);
        if (std::find(names.begin(), names.end(), range) != names.end())
            flag(kw, range);
    }

    // Iterator-style: name.begin() / name.cbegin() / name.rbegin()
    for (const auto &name : names) {
        for (size_t ref : tokenRefs(f.code, name)) {
            size_t p = skipSpace(f.code, ref + name.size());
            if (p >= f.code.size() || f.code[p] != '.')
                continue;
            p = skipSpace(f.code, p + 1);
            for (const char *b : {"begin", "cbegin", "rbegin"}) {
                const size_t n = std::string(b).size();
                if (f.code.compare(p, n, b) == 0 &&
                    calledAt(f.code, p + n)) {
                    flag(ref, name);
                    break;
                }
            }
        }
    }
}

void
rulePointerOrder(const ParsedFile &f, std::vector<Finding> &out)
{
    if (!inDir(f.path, "sim") && !inDir(f.path, "subchannel") &&
        !inDir(f.path, "workload"))
        return;

    for (size_t at : tokenRefs(f.code, "reinterpret_cast")) {
        size_t p = skipSpace(f.code, at + 16);
        if (p >= f.code.size() || f.code[p] != '<')
            continue;
        p = skipSpace(f.code, p + 1);
        if (f.code.compare(p, 5, "std::") == 0)
            p += 5;
        if (f.code.compare(p, 9, "uintptr_t") == 0 ||
            f.code.compare(p, 8, "intptr_t") == 0)
            add(out, f, at, "pointer-order",
                "casting a pointer to an integer exposes its runtime "
                "address (ASLR-dependent) to arithmetic or ordering; "
                "key replay/sweep state by stable ids instead");
    }

    static const std::regex less_ptr(R"(std::less\s*<[^<>]*\*\s*>)");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(),
                                        less_ptr);
         it != std::sregex_iterator(); ++it) {
        add(out, f, static_cast<size_t>(it->position()), "pointer-order",
            "std::less over pointers orders by runtime address; order "
            "replay/sweep collections by stable ids");
    }

    // Comparator lambda over two pointer parameters whose body orders
    // them: [..](const T *a, const T *b) { ... a < b ... }
    static const std::regex lambda_ptr(
        R"(\[[^\[\]]*\]\s*\(\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*)"
        R"((\w+)\s*,\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*(\w+)\s*\))");
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(),
                                        lambda_ptr);
         it != std::sregex_iterator(); ++it) {
        const std::string a = (*it)[1], b = (*it)[2];
        const size_t after =
            static_cast<size_t>(it->position() + it->length());
        const size_t open = f.code.find('{', after);
        if (open == std::string::npos)
            continue;
        const size_t close = matchBracket(f.code, open, '{', '}');
        if (close == std::string::npos)
            continue;
        const std::string body = f.code.substr(open, close - open);
        const std::regex cmp("(^|[^\\w<>])(" + a + "\\s*[<>]=?\\s*" + b +
                             "|" + b + "\\s*[<>]=?\\s*" + a +
                             ")($|[^\\w<>=])");
        if (std::regex_search(body, cmp))
            add(out, f, static_cast<size_t>(it->position()),
                "pointer-order",
                "comparator orders raw pointers '" + a + "'/'" + b +
                    "' by address; sort replay/sweep data by a stable "
                    "key");
    }
}

void
ruleMitigatorFinal(const ParsedFile &f, std::vector<Finding> &out)
{
    if (!inDir(f.path, "mitigation") || !endsWith(f.path, ".hh"))
        return;
    static const std::regex derive(
        R"(class\s+([A-Za-z_]\w*)\s*(final\s*)?:\s*public\s+)"
        R"((?:\w+::)*IMitigator\b)");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), derive);
         it != std::sregex_iterator(); ++it) {
        if ((*it)[2].matched)
            continue;
        add(out, f, static_cast<size_t>(it->position()),
            "mitigator-final",
            "class " + (*it)[1].str() +
                " derives from IMitigator but is not final; sealed "
                "dispatch (subchannel dispatchSealed) static_casts to "
                "the concrete type, which is only sound for a closed "
                "set of final classes");
    }
}

void
ruleJsonlStability(const ParsedFile &f, std::vector<Finding> &out)
{
    // A file is an emitter when it *formats* JSON itself (the
    // toJsonLine/jsonField helpers or the explicit MOATSIM_JSONL
    // marker) -- merely calling writeJsonLines() delegates the
    // formatting to result_io, which is checked on its own.
    const bool emitter =
        f.raw.find("toJsonLine") != std::string::npos ||
        f.raw.find("jsonField") != std::string::npos ||
        f.raw.find("MOATSIM_JSONL") != std::string::npos;
    if (!emitter)
        return;

    // Float conversions inside real string literals must be %.17g.
    static const std::regex conv(R"(%[-+ #0-9.*]*[a-zA-Z])");
    for (const auto &[b, e] : f.string_spans) {
        const std::string lit = f.raw.substr(b, e - b);
        for (auto it =
                 std::sregex_iterator(lit.begin(), lit.end(), conv);
             it != std::sregex_iterator(); ++it) {
            const std::string spec = it->str();
            const char kind = spec.back();
            if (kind != 'e' && kind != 'E' && kind != 'f' &&
                kind != 'F' && kind != 'g' && kind != 'G')
                continue;
            if (spec == "%.17g")
                continue;
            add(out, f, b + static_cast<size_t>(it->position()),
                "jsonl-stability",
                "float format \"" + spec +
                    "\" in a JSONL-emitting file; use \"%.17g\" (the "
                    "shortest round-trip-exact form result_io "
                    "standardized) so golden files stay byte-stable");
        }
    }

    for (size_t at : tokenRefs(f.code, "setprecision"))
        add(out, f, at, "jsonl-stability",
            "std::setprecision in a JSONL-emitting file; format "
            "doubles with snprintf \"%.17g\" (see sim/result_io.cc "
            "jsonDouble) so output stays byte-stable");
}

void
ruleMagicGeometry(const ParsedFile &f, std::vector<Finding> &out)
{
    // The device tables themselves -- and the named Table-3 constants
    // they share with TimingParams -- are where the numbers live.
    if (endsWith(f.path, "dram/device.cc") ||
        endsWith(f.path, "dram/device.hh") ||
        endsWith(f.path, "dram/timing.hh"))
        return;

    // Raw Table-3 row count: 64 * 1024 in any spacing, or spelled out.
    static const std::regex rows(R"(\b(64\s*\*\s*1024|65536|0x10000)\b)");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), rows);
         it != std::sregex_iterator(); ++it) {
        add(out, f, static_cast<size_t>(it->position()), "magic-geometry",
            "raw row-count literal '" + it->str() +
                "'; use dram::kTable3RowsPerBank or derive from the "
                "DeviceModel geometry so every device grade stays "
                "consistent");
    }

    // Raw bank-count literal bound to a banks-ish identifier
    // (banks_per_chip = 32, numBanks = 32, ...).
    static const std::regex banks(R"(\b(\w*[Bb]anks\w*)\s*=\s*32\b)");
    for (auto it =
             std::sregex_iterator(f.code.begin(), f.code.end(), banks);
         it != std::sregex_iterator(); ++it) {
        add(out, f, static_cast<size_t>(it->position()), "magic-geometry",
            "bank count '" + (*it)[1].str() +
                " = 32' duplicates the Table-3 geometry; take it from "
                "dram::kTable3BanksPerSubchannel or a DeviceModel "
                "instead of a parallel constant");
    }
}

/** Per-file rule driver (everything except the cross-file checks). */
std::vector<Finding>
lintParsed(const ParsedFile &f, const std::vector<std::string> &extra)
{
    std::vector<Finding> out;
    ruleStdHash(f, out);
    ruleLibcRand(f, out);
    ruleWallClock(f, out);
    ruleUnorderedIter(f, extra, out);
    rulePointerOrder(f, out);
    ruleMitigatorFinal(f, out);
    ruleJsonlStability(f, out);
    ruleMagicGeometry(f, out);
    return out;
}

/**
 * One suppression pass over the complete finding set (textual +
 * cross-file + keylint), in three phases: (1) valid allow() comments
 * cover matching findings; (2) malformed allow() comments, unknown
 * directives, and -- the stale-suppression audit -- valid allow()
 * comments whose target line no longer triggers their rule all become
 * bad-suppression findings; (3) allow(bad-suppression) covers the
 * phase-2 findings on its target line (so a deliberately kept
 * suppression can document itself). allow(bad-suppression) is never
 * itself reported stale: its target legitimately stops firing when
 * the underlying comment gets fixed.
 */
void
applySuppressionsAll(const std::vector<ParsedFile> &files,
                     std::vector<Finding> &findings)
{
    std::map<std::string, const ParsedFile *> by_path;
    for (const auto &f : files)
        by_path[f.path] = &f;
    std::set<const Suppression *> used;

    for (auto &fi : findings) {
        const auto it = by_path.find(fi.file);
        if (it == by_path.end())
            continue;
        for (const auto &s : it->second->sups) {
            if (!s.valid || s.rule != fi.rule || s.target != fi.line)
                continue;
            fi.suppressed = true;
            fi.justification = s.justification;
            used.insert(&s);
            break;
        }
    }

    std::vector<Finding> extra;
    for (const auto &f : files) {
        for (const auto &s : f.sups) {
            if (!s.valid) {
                const std::string why =
                    !ruleKnown(s.rule)
                        ? "names unknown rule '" + s.rule + "'"
                        : "is missing its justification (write \"// "
                          "moatlint: allow(" +
                              s.rule + "): <why this is safe>\")";
                extra.push_back({f.path, s.line, "bad-suppression",
                                 "suppression comment " + why, false,
                                 ""});
                continue;
            }
            if (s.rule == "bad-suppression")
                continue;
            if (!used.count(&s))
                extra.push_back(
                    {f.path, s.line, "bad-suppression",
                     "stale suppression: allow(" + s.rule +
                         ") covers line " + std::to_string(s.target) +
                         ", which no longer triggers " + s.rule +
                         "; delete the comment (left in place it "
                         "would mask a future regression)",
                     false, ""});
        }
        for (const int line : f.bad_directives)
            extra.push_back(
                {f.path, line, "bad-suppression",
                 "unknown moatlint directive (known: allow(<rule>): "
                 "<why>, key-source(<keyFn>), key-exempt(<keyFn>): "
                 "<why>)",
                 false, ""});
    }

    for (auto &fi : extra) {
        const auto it = by_path.find(fi.file);
        if (it == by_path.end())
            continue;
        for (const auto &s : it->second->sups) {
            if (!s.valid || s.rule != "bad-suppression" ||
                s.target != fi.line)
                continue;
            fi.suppressed = true;
            fi.justification = s.justification;
            break;
        }
    }
    findings.insert(findings.end(), extra.begin(), extra.end());
}

// --------------------------------------------------- cross-file rules

/** Members of `enum class MitigatorKind`, with the enum's line. */
std::vector<std::string>
mitigatorKinds(const ParsedFile &f, int *enum_line)
{
    std::vector<std::string> kinds;
    const size_t at = f.code.find("enum class MitigatorKind");
    if (at == std::string::npos)
        return kinds;
    *enum_line = lineOf(f.lines, at);
    const size_t open = f.code.find('{', at);
    if (open == std::string::npos)
        return kinds;
    const size_t close = matchBracket(f.code, open, '{', '}');
    if (close == std::string::npos)
        return kinds;
    std::string body = f.code.substr(open + 1, close - open - 2);
    std::istringstream is(body);
    std::string item;
    while (std::getline(is, item, ',')) {
        const size_t eq = item.find('=');
        if (eq != std::string::npos)
            item = item.substr(0, eq);
        const size_t b = item.find_first_not_of(" \t\n");
        if (b == std::string::npos)
            continue;
        const size_t e = item.find_last_not_of(" \t\n");
        kinds.push_back(item.substr(b, e - b + 1));
    }
    return kinds;
}

void
ruleSealedDispatch(const std::vector<ParsedFile> &files,
                   std::vector<Finding> &findings)
{
    const ParsedFile *enum_file = nullptr;
    for (const auto &f : files) {
        if (endsWith(f.path, "mitigation/mitigator.hh"))
            enum_file = &f;
    }
    if (!enum_file)
        return; // fixture trees without the registry: nothing to check
    int enum_line = 0;
    const std::vector<std::string> kinds =
        mitigatorKinds(*enum_file, &enum_line);
    bool have_dispatch = false;
    for (const auto &kind : kinds) {
        if (kind == "Custom")
            continue; // the virtual-fallback tag, by design
        bool dispatched = false;
        for (const auto &f : files) {
            if (!inDir(f.path, "subchannel"))
                continue;
            have_dispatch = true;
            if (f.code.find("case MitigatorKind::" + kind) !=
                std::string::npos) {
                dispatched = true;
                break;
            }
        }
        if (have_dispatch && !dispatched)
            findings.push_back(
                {enum_file->path, enum_line, "sealed-dispatch",
                 "MitigatorKind::" + kind +
                     " has no case in the sealed dispatch switch "
                     "(src/subchannel); its hot path would silently "
                     "decay to virtual calls",
                 false, ""});
    }
}

} // namespace

// ------------------------------------------------------------- public

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"std-hash", "std::hash is stdlib-dependent; seeds derive from "
                     "FNV-1a cell keys (common/hash.hh)"},
        {"libc-rand", "rand()/std::random_device/...: non-reproducible "
                      "randomness; use common/rng.hh"},
        {"wall-clock", "wall-clock reads in src/ make results "
                       "time-dependent; use simulation time"},
        {"unordered-iter", "iteration over std::unordered_{map,set} is "
                           "unspecified order"},
        {"pointer-order", "pointer-value comparison/ordering in "
                          "replay/sweep code is ASLR-dependent"},
        {"mitigator-final", "registry mitigators must be final for "
                            "sealed-dispatch devirtualization"},
        {"sealed-dispatch", "every non-Custom MitigatorKind needs a "
                            "case in dispatchSealed"},
        {"jsonl-stability", "JSONL emitters format doubles with %.17g "
                            "only (byte-stable goldens)"},
        {"magic-geometry", "raw Table-3 geometry literals outside the "
                           "device tables; derive from DeviceModel"},
        {"key-coverage", "every field of a key-source struct must be "
                         "reachable in its key function's fold"},
        {"key-exempt-leak", "key-exempt fields must be absent from the "
                            "fold (over-keying kills cache hits)"},
        {"key-source-drift", "key annotations out of sync with the "
                             "code (missing key fn, bypassed nested "
                             "key-source, misplaced annotation)"},
        {"bad-suppression", "moatlint comment naming an unknown rule "
                            "or directive, missing its justification, "
                            "or stale (target no longer fires)"},
    };
    return kRules;
}

bool
ruleKnown(const std::string &name)
{
    for (const auto &r : rules()) {
        if (r.name == name)
            return true;
    }
    return false;
}

const char *
passOf(const std::string &rule)
{
    return (rule == "key-coverage" || rule == "key-exempt-leak" ||
            rule == "key-source-drift")
               ? "semantic"
               : "textual";
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const std::vector<std::string> &extra_unordered)
{
    const ParsedFile f = parseFile(path, content);
    std::vector<Finding> findings = lintParsed(f, extra_unordered);
    // Single-snippet keylint: a key fn declared here but defined in
    // the unseen .cc is not drift (tree_mode=false).
    const std::vector<SourceFile> one{{path, content}};
    const std::vector<Finding> key = keylintFiles(one, false);
    findings.insert(findings.end(), key.begin(), key.end());
    applySuppressionsAll({f}, findings);
    sortFindings(findings);
    return findings;
}

std::vector<SourceFile>
readSourceTree(const std::string &root)
{
    namespace fs = std::filesystem;
    const fs::path root_path(root);
    const fs::path base = root_path.parent_path();

    std::vector<fs::path> paths;
    if (fs::exists(root_path)) {
        for (const auto &entry :
             fs::recursive_directory_iterator(root_path)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
                ext == ".hpp" || ext == ".h")
                paths.push_back(entry.path());
        }
    }
    // Directory iteration order is filesystem-dependent; the linter
    // holds itself to the determinism bar it enforces.
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const auto &p : paths) {
        std::ifstream is(p, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        fs::path rel = p.lexically_relative(base.empty() ? "." : base);
        std::string display = rel.generic_string();
        if (display.empty() || display.compare(0, 2, "..") == 0)
            display = p.generic_string();
        files.push_back({display, buf.str()});
    }
    return files;
}

std::vector<Finding>
lintFiles(const std::vector<SourceFile> &srcs)
{
    std::vector<ParsedFile> files;
    files.reserve(srcs.size());
    for (const auto &s : srcs)
        files.push_back(parseFile(s.path, s.content));

    // Unordered-container members declared in a header are often
    // iterated in the paired .cc; feed each .cc its header's decls.
    std::map<std::string, std::vector<std::string>> header_decls;
    for (const auto &f : files) {
        if (endsWith(f.path, ".hh") || endsWith(f.path, ".hpp") ||
            endsWith(f.path, ".h")) {
            const size_t dot = f.path.rfind('.');
            header_decls[f.path.substr(0, dot)] =
                unorderedDecls(f.code);
        }
    }

    std::vector<Finding> findings;
    for (const auto &f : files) {
        std::vector<std::string> extra;
        if (endsWith(f.path, ".cc") || endsWith(f.path, ".cpp")) {
            const size_t dot = f.path.rfind('.');
            const auto it = header_decls.find(f.path.substr(0, dot));
            if (it != header_decls.end())
                extra = it->second;
        }
        const std::vector<Finding> fs_ = lintParsed(f, extra);
        findings.insert(findings.end(), fs_.begin(), fs_.end());
    }

    ruleSealedDispatch(files, findings);
    const std::vector<Finding> key = keylintFiles(srcs, true);
    findings.insert(findings.end(), key.begin(), key.end());

    applySuppressionsAll(files, findings);
    sortFindings(findings);
    return findings;
}

std::vector<Finding>
lintTree(const std::string &root)
{
    return lintFiles(readSourceTree(root));
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
}

std::size_t
unsuppressedCount(const std::vector<Finding> &findings)
{
    std::size_t n = 0;
    for (const auto &f : findings) {
        if (!f.suppressed)
            ++n;
    }
    return n;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
reportJson(const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    sortFindings(sorted);
    std::string out = "{\"rules\":[";
    bool first = true;
    for (const auto &r : rules()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(r.name) + "\"";
    }
    out += "],\"findings\":[";
    first = true;
    for (const auto &f : sorted) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"file\":\"" + jsonEscape(f.file) + "\"";
        out += ",\"line\":" + std::to_string(f.line);
        out += ",\"rule\":\"" + jsonEscape(f.rule) + "\"";
        out += ",\"pass\":\"" + std::string(passOf(f.rule)) + "\"";
        out += ",\"message\":\"" + jsonEscape(f.message) + "\"";
        out += std::string(",\"suppressed\":") +
               (f.suppressed ? "true" : "false");
        out += ",\"justification\":\"" + jsonEscape(f.justification) +
               "\"}";
    }
    out += "],\"total\":" + std::to_string(sorted.size());
    out += ",\"unsuppressed\":" +
           std::to_string(unsuppressedCount(sorted));
    out += "}";
    return out;
}

std::string
reportSarif(const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    sortFindings(sorted);
    std::string out =
        "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"moatlint\",\"rules\":[";
    bool first = true;
    for (const auto &r : rules()) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"id\":\"" + jsonEscape(r.name) + "\"";
        out += ",\"shortDescription\":{\"text\":\"" +
               jsonEscape(r.summary) + "\"}";
        out += ",\"properties\":{\"pass\":\"" +
               std::string(passOf(r.name)) + "\"}}";
    }
    out += "]}},\"results\":[";
    first = true;
    for (const auto &f : sorted) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"ruleId\":\"" + jsonEscape(f.rule) + "\"";
        out += std::string(",\"level\":\"") +
               (f.suppressed ? "note" : "error") + "\"";
        out += ",\"message\":{\"text\":\"" + jsonEscape(f.message) +
               "\"}";
        out += ",\"locations\":[{\"physicalLocation\":{"
               "\"artifactLocation\":{\"uri\":\"" +
               jsonEscape(f.file) +
               "\"},\"region\":{\"startLine\":" +
               std::to_string(f.line) + "}}}]";
        if (f.suppressed)
            out += ",\"suppressions\":[{\"kind\":\"inSource\","
                   "\"justification\":\"" +
                   jsonEscape(f.justification) + "\"}]";
        out += "}";
    }
    out += "]}]}";
    return out;
}

} // namespace moatlint
