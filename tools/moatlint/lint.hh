/**
 * @file
 * moatlint: repo-specific determinism and sealed-dispatch linter.
 *
 * moatsim's headline guarantee -- bit-identical sweep results at any
 * --jobs count, on any host, with any stdlib -- rests on source-level
 * invariants no off-the-shelf tool knows:
 *
 *   std-hash         std::hash is implementation-defined; every seed
 *                    must derive from the FNV-1a cell keys in
 *                    common/hash.hh.
 *   libc-rand        rand()/std::random_device/... draw from global or
 *                    hardware state; all randomness goes through
 *                    common/rng.hh seeded from stable keys.
 *   wall-clock       wall-clock reads make results time-dependent;
 *                    simulation time is common/time.hh picoseconds.
 *   unordered-iter   iteration order of std::unordered_{map,set} is
 *                    unspecified; iterating one can leak that order
 *                    into results, JSONL, or eviction decisions.
 *   pointer-order    pointer values differ run to run (ASLR); ordering
 *                    or comparing them in replay/sweep code
 *                    (src/{sim,subchannel,workload}) breaks replay
 *                    determinism.
 *   mitigator-final  registry mitigators must be `final` so the sealed
 *                    dispatch devirtualization stays sound.
 *   sealed-dispatch  every MitigatorKind except Custom must have a
 *                    case in dispatchSealed (src/subchannel), or the
 *                    hot path silently decays to virtual calls.
 *   jsonl-stability  JSONL emitters format doubles with "%.17g"
 *                    (byte-stable, round-trip exact); other float
 *                    conversions and std::setprecision are banned in
 *                    emitting files (files that format JSON themselves
 *                    via toJsonLine/jsonField or that opt in with a
 *                    MOATSIM_JSONL marker comment).
 *   magic-geometry   raw Table-3 geometry literals (64 * 1024 row
 *                    counts, `banks... = 32`) outside the device
 *                    tables (dram/device.*, dram/timing.hh); geometry
 *                    derives from the DeviceModel single source of
 *                    truth.
 *   key-coverage     a field of a `// moatlint: key-source(fn)` struct
 *                    is not reachable in fn's fold closure (keylint.hh
 *                    -- the semantic layer on tools/moatlint/cxx_scan).
 *   key-exempt-leak  a `// moatlint: key-exempt(fn)` field appears in
 *                    fn's fold body (over-keying kills cache hits).
 *   key-source-drift a key annotation and the code disagree (missing
 *                    key-fn definition, annotation not on a
 *                    struct/field, nested key-source bypassed).
 *   bad-suppression  a moatlint comment naming an unknown rule or
 *                    directive, missing its justification, or -- the
 *                    stale-suppression audit -- a well-formed allow()
 *                    whose target line no longer triggers the rule.
 *
 * Findings carry file/line diagnostics. A finding is suppressed -- but
 * still reported, with its justification -- by an inline comment on
 * the same line, or on its own line above (further whole-line comments
 * may continue the justification between it and the code):
 *
 *     // moatlint: allow(unordered-iter): commutative counting only
 *
 * The justification is mandatory; suppressions without one (or naming
 * an unknown rule) surface as bad-suppression findings and do not
 * suppress anything.
 *
 * The engine has two layers, both toolchain-free and running in
 * milliseconds: the determinism rules above are textual
 * (comment/string-aware token scanning), while the key-* rules are
 * semantic -- they ride on the cxx_scan.hh tokenizer/declaration
 * scanner and reason about struct fields and function-body reach
 * across header/impl pairs (see keylint.hh). reportJson() labels each
 * finding with its `pass` ("textual" or "semantic");
 * tests/test_moatlint.cc pins each rule's behaviour with fixture
 * snippets and asserts the real tree is clean.
 */

#ifndef MOATLINT_LINT_HH
#define MOATLINT_LINT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace moatlint
{

/** One diagnostic of one rule at one source line. */
struct Finding
{
    /** Path as reported (relative to the linted tree's parent). */
    std::string file;
    /** 1-based line. */
    int line = 0;
    /** Rule name (see rules()). */
    std::string rule;
    std::string message;
    /** True when an allow() comment with a justification covers it. */
    bool suppressed = false;
    /** The suppression's justification text (when suppressed). */
    std::string justification;
};

/** Name and one-line summary of one rule. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** Every rule the engine knows, in stable order. */
const std::vector<RuleInfo> &rules();

/** Whether @p name names a known rule. */
bool ruleKnown(const std::string &name);

/** Which engine layer emits @p rule: "semantic" for the key-* rules
 *  (cxx_scan-based), "textual" for everything else. Stable -- the
 *  --json report's `pass` field and the SARIF rule properties use it
 *  verbatim. */
const char *passOf(const std::string &rule);

/** One file of a linted tree, by display path and contents. */
struct SourceFile
{
    /** Path as reported in findings (e.g. "src/sim/perf.cc"). */
    std::string path;
    std::string content;
};

/**
 * The .cc/.hh/.cpp/.hpp/.h files under @p root (recursively), sorted
 * by path, with display paths relative to @p root's parent directory
 * (linting <repo>/src yields "src/..." paths).
 */
std::vector<SourceFile> readSourceTree(const std::string &root);

/**
 * Lint a whole tree given in memory: per-file textual rules, the
 * cross-file rules (sealed-dispatch), the keylint pass, then one
 * suppression application across everything -- which is also where
 * the stale-suppression audit runs (a valid allow() that matched no
 * finding becomes a bad-suppression). lintTree() is
 * lintFiles(readSourceTree(root)); mutateCheck() feeds it mutated
 * copies.
 */
std::vector<Finding> lintFiles(const std::vector<SourceFile> &files);

/**
 * Lint one file's contents. @p path scopes path-dependent rules
 * (pointer-order, mitigator-final, jsonl-stability) and labels the
 * findings. @p extra_unordered names identifiers to treat as
 * unordered containers in addition to those declared in @p content
 * (lintTree passes the paired header's declarations so a .cc
 * iterating a member declared in its .hh is still caught).
 */
std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const std::vector<std::string> &extra_unordered = {});

/**
 * Lint every .cc/.hh/.cpp/.hpp/.h under @p root (recursively), in
 * sorted path order, then run the cross-file rules (sealed-dispatch).
 * Findings report paths relative to @p root's parent directory, so
 * linting <repo>/src yields "src/..." paths.
 */
std::vector<Finding> lintTree(const std::string &root);

/** Findings sorted by (file, line, rule, message). */
void sortFindings(std::vector<Finding> &findings);

/** Number of findings not covered by a valid suppression. */
std::size_t unsuppressedCount(const std::vector<Finding> &findings);

/**
 * Machine-readable report: one JSON object with the rule list, every
 * finding (sorted; suppressed ones included with their justification
 * and each labelled with its `pass`), and summary counts. Byte-stable
 * for identical findings.
 */
std::string reportJson(const std::vector<Finding> &findings);

/**
 * SARIF 2.1.0 report (one run, driver "moatlint") for code-scanning
 * upload: every rule in the driver's rule list, every finding as a
 * result with physical location; suppressed findings carry an
 * inSource suppression so they do not open alerts. Byte-stable for
 * identical findings.
 */
std::string reportSarif(const std::vector<Finding> &findings);

} // namespace moatlint

#endif // MOATLINT_LINT_HH
