#!/usr/bin/env bash
# Apply .clang-format to every C++ source in place. Commit the result
# as a standalone format-only commit and append its hash to
# .git-blame-ignore-revs so `git blame` (with
# `git config blame.ignoreRevsFile .git-blame-ignore-revs`) skips it.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
    echo "error: $CLANG_FORMAT not found" >&2
    exit 1
fi

find src tests bench examples tools \
    \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) \
    -exec "$CLANG_FORMAT" -i {} +
echo "formatted; review with git diff"
