#!/usr/bin/env bash
# Tier-1 verification: configure, build everything with warnings as
# errors, run the test suite at full parallelism, and smoke-check the
# sweep engine's determinism guarantee (jobs=1 vs jobs=8 must be
# byte-identical on the full 2-sub-channel system). This is the
# command CI runs and the bar every change must clear.
#
# MOATSIM_CMAKE_ARGS adds extra configure arguments (CI injects the
# ccache launcher and sanitizer flags through it).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

# shellcheck disable=SC2086 # word-splitting the extra args is the point
cmake -B "$BUILD_DIR" -S . -DMOATSIM_WERROR=ON ${MOATSIM_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Static analysis, lint-only flavour: the moatlint determinism/
# sealed-dispatch linter must report zero unsuppressed findings. This
# works with any toolchain; the clang thread-safety build and the
# clang-tidy pass run in the dedicated static-analysis CI job (run
# ./scripts/static_analysis.sh locally when clang is installed).
BUILD_DIR="$BUILD_DIR" ./scripts/static_analysis.sh --lint-only

# Determinism smoke: the same sweep at 1 and 8 workers must produce
# byte-identical tables (catches RNG/schedule leaks the unit tests
# might miss at full configuration). The whole 21-workload suite on
# the 2-sub-channel system is used so the jobs=8 run genuinely fans
# out across the pool (a single-cell sweep would fall back to the
# serial path).
echo "determinism smoke: perf sweep at --jobs 1 vs --jobs 8"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 1 > "$BUILD_DIR/perf_jobs1.txt"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 > "$BUILD_DIR/perf_jobs8.txt"
diff "$BUILD_DIR/perf_jobs1.txt" "$BUILD_DIR/perf_jobs8.txt"

# The adversary-under-load sweep carries the same guarantee: every
# (workload x mitigator x attack) cell is independently seeded, so a
# parallel co-attack run must be byte-identical to a serial one.
echo "determinism smoke: coattack sweep at --jobs 1 vs --jobs 8"
"$BUILD_DIR/moatsim" coattack --workload all --pattern postponement \
  --mitigator panopticon --fraction 0.015625 --subchannels 2 \
  --jobs 1 > "$BUILD_DIR/coattack_jobs1.txt"
"$BUILD_DIR/moatsim" coattack --workload all --pattern postponement \
  --mitigator panopticon --fraction 0.015625 --subchannels 2 \
  --jobs 8 > "$BUILD_DIR/coattack_jobs8.txt"
diff "$BUILD_DIR/coattack_jobs1.txt" "$BUILD_DIR/coattack_jobs8.txt"

# The device axis carries the same guarantee at every topology: a
# named multi-rank, multi-channel grade fans its slots out across
# channels x ranks x sub-channels with per-level derived seeds, and a
# parallel run must still be byte-identical to a serial one.
echo "determinism smoke: --device sweep at --jobs 1 vs --jobs 8"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --device "device:org=128gb-2r2ch,speed=ddr5-prac-fast" \
  --jobs 1 > "$BUILD_DIR/perf_device_jobs1.txt"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --device "device:org=128gb-2r2ch,speed=ddr5-prac-fast" \
  --jobs 8 > "$BUILD_DIR/perf_device_jobs8.txt"
diff "$BUILD_DIR/perf_device_jobs1.txt" "$BUILD_DIR/perf_device_jobs8.txt"

# The shared trace store is a pure cache: a run with it disabled (via
# the CLI flag and via the environment switch -- both are supported
# knobs) must be byte-identical to the cached jobs=8 run above.
echo "determinism smoke: trace store enabled vs disabled"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 --no-trace-store \
  > "$BUILD_DIR/perf_store_flag_off.txt"
diff "$BUILD_DIR/perf_jobs8.txt" "$BUILD_DIR/perf_store_flag_off.txt"
MOATSIM_TRACE_STORE=0 "$BUILD_DIR/moatsim" perf --workload all \
  --fraction 0.015625 --subchannels 2 --jobs 8 \
  > "$BUILD_DIR/perf_store_env_off.txt"
diff "$BUILD_DIR/perf_jobs8.txt" "$BUILD_DIR/perf_store_env_off.txt"
echo "determinism smoke passed"
