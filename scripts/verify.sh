#!/usr/bin/env bash
# Tier-1 verification: configure, build everything with warnings as
# errors, and run the test suite. This is the command CI runs and the
# bar every change must clear.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DMOATSIM_WERROR=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
