#!/usr/bin/env bash
# Tier-1 verification: configure, build everything with warnings as
# errors, run the test suite at full parallelism, and smoke-check the
# sweep engine's determinism guarantee (jobs=1 vs jobs=4 must be
# byte-identical). This is the command CI runs and the bar every
# change must clear.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DMOATSIM_WERROR=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Determinism smoke: the same sweep at 1 and 4 workers must produce
# byte-identical tables (catches RNG/schedule leaks the unit tests
# might miss at full configuration). The whole 21-workload suite is
# used so the jobs=4 run genuinely fans out across the pool (a
# single-cell sweep would fall back to the serial path).
echo "determinism smoke: perf sweep at --jobs 1 vs --jobs 4"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 --jobs 1 \
  > "$BUILD_DIR/perf_jobs1.txt"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 --jobs 4 \
  > "$BUILD_DIR/perf_jobs4.txt"
diff "$BUILD_DIR/perf_jobs1.txt" "$BUILD_DIR/perf_jobs4.txt"
echo "determinism smoke passed"
