#!/usr/bin/env bash
# Tier-1 verification: configure, build everything with warnings as
# errors, run the test suite at full parallelism, and smoke-check the
# sweep engine's determinism guarantee (jobs=1 vs jobs=8 must be
# byte-identical on the full 2-sub-channel system). This is the
# command CI runs and the bar every change must clear.
#
# MOATSIM_CMAKE_ARGS adds extra configure arguments (CI injects the
# ccache launcher and sanitizer flags through it).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

# shellcheck disable=SC2086 # word-splitting the extra args is the point
cmake -B "$BUILD_DIR" -S . -DMOATSIM_WERROR=ON ${MOATSIM_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Static analysis, lint-only flavour: the moatlint determinism/
# sealed-dispatch linter plus its keylint cache-key pass must report
# zero unsuppressed findings across src/, tools/, and tests/, and the
# moatlint --mutate-check oracle must catch every seeded key mutant.
# This works with any toolchain; the clang thread-safety build and the
# clang-tidy pass run in the dedicated static-analysis CI job (run
# ./scripts/static_analysis.sh locally when clang is installed).
BUILD_DIR="$BUILD_DIR" ./scripts/static_analysis.sh --lint-only

# Determinism smoke: the same sweep at 1 and 8 workers must produce
# byte-identical tables (catches RNG/schedule leaks the unit tests
# might miss at full configuration). The whole 21-workload suite on
# the 2-sub-channel system is used so the jobs=8 run genuinely fans
# out across the pool (a single-cell sweep would fall back to the
# serial path).
echo "determinism smoke: perf sweep at --jobs 1 vs --jobs 8"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 1 > "$BUILD_DIR/perf_jobs1.txt"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 > "$BUILD_DIR/perf_jobs8.txt"
diff "$BUILD_DIR/perf_jobs1.txt" "$BUILD_DIR/perf_jobs8.txt"

# The adversary-under-load sweep carries the same guarantee: every
# (workload x mitigator x attack) cell is independently seeded, so a
# parallel co-attack run must be byte-identical to a serial one.
echo "determinism smoke: coattack sweep at --jobs 1 vs --jobs 8"
"$BUILD_DIR/moatsim" coattack --workload all --pattern postponement \
  --mitigator panopticon --fraction 0.015625 --subchannels 2 \
  --jobs 1 > "$BUILD_DIR/coattack_jobs1.txt"
"$BUILD_DIR/moatsim" coattack --workload all --pattern postponement \
  --mitigator panopticon --fraction 0.015625 --subchannels 2 \
  --jobs 8 > "$BUILD_DIR/coattack_jobs8.txt"
diff "$BUILD_DIR/coattack_jobs1.txt" "$BUILD_DIR/coattack_jobs8.txt"

# The device axis carries the same guarantee at every topology: a
# named multi-rank, multi-channel grade fans its slots out across
# channels x ranks x sub-channels with per-level derived seeds, and a
# parallel run must still be byte-identical to a serial one.
echo "determinism smoke: --device sweep at --jobs 1 vs --jobs 8"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --device "device:org=128gb-2r2ch,speed=ddr5-prac-fast" \
  --jobs 1 > "$BUILD_DIR/perf_device_jobs1.txt"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --device "device:org=128gb-2r2ch,speed=ddr5-prac-fast" \
  --jobs 8 > "$BUILD_DIR/perf_device_jobs8.txt"
diff "$BUILD_DIR/perf_device_jobs1.txt" "$BUILD_DIR/perf_device_jobs8.txt"

# The shared trace store is a pure cache: a run with it disabled (via
# the CLI flag and via the environment switch -- both are supported
# knobs) must be byte-identical to the cached jobs=8 run above.
echo "determinism smoke: trace store enabled vs disabled"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 --no-trace-store \
  > "$BUILD_DIR/perf_store_flag_off.txt"
diff "$BUILD_DIR/perf_jobs8.txt" "$BUILD_DIR/perf_store_flag_off.txt"
MOATSIM_TRACE_STORE=0 "$BUILD_DIR/moatsim" perf --workload all \
  --fraction 0.015625 --subchannels 2 --jobs 8 \
  > "$BUILD_DIR/perf_store_env_off.txt"
diff "$BUILD_DIR/perf_jobs8.txt" "$BUILD_DIR/perf_store_env_off.txt"

# The result store is a pure cache of whole cells: a cold run filling
# a shard directory and a warm re-run served entirely from it must be
# byte-identical (table and JSONL), and the warm run must recompute
# zero cells (the stderr summary proves it).
echo "result store smoke: cold vs warm full re-run"
rm -rf "$BUILD_DIR/result_store_smoke"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 --result-store "$BUILD_DIR/result_store_smoke" \
  --jsonl "$BUILD_DIR/perf_store_cold.jsonl" \
  > "$BUILD_DIR/perf_store_cold.txt" 2> "$BUILD_DIR/perf_store_cold.err"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 --result-store "$BUILD_DIR/result_store_smoke" \
  --jsonl "$BUILD_DIR/perf_store_warm.jsonl" \
  > "$BUILD_DIR/perf_store_warm.txt" 2> "$BUILD_DIR/perf_store_warm.err"
diff "$BUILD_DIR/perf_jobs8.txt" "$BUILD_DIR/perf_store_cold.txt"
diff "$BUILD_DIR/perf_store_cold.txt" "$BUILD_DIR/perf_store_warm.txt"
diff "$BUILD_DIR/perf_store_cold.jsonl" "$BUILD_DIR/perf_store_warm.jsonl"
grep -q "computes=0 " "$BUILD_DIR/perf_store_warm.err" || {
  echo "FATAL: warm result-store run recomputed cells:" >&2
  cat "$BUILD_DIR/perf_store_warm.err" >&2
  exit 1
}

# Serve smoke: a daemon-served sweep must be byte-identical to the
# direct CLI's --jsonl output. --max-requests 1 bounds the daemon's
# life without any timeout; the client blocks until the cells stream
# back, so no sleep/poll is needed beyond waiting for the socket.
echo "serve smoke: daemon round-trip vs direct run"
SOCK="$BUILD_DIR/moatsim_serve_smoke.sock"
rm -f "$SOCK" "$BUILD_DIR/perf_serve.jsonl" "$BUILD_DIR/perf_direct.jsonl"
"$BUILD_DIR/moatsim" serve --socket "$SOCK" --max-requests 1 \
  2> "$BUILD_DIR/serve_smoke.err" &
SERVE_PID=$!
while [ ! -S "$SOCK" ]; do
  kill -0 "$SERVE_PID" 2>/dev/null || {
    echo "FATAL: serve daemon died before listening:" >&2
    cat "$BUILD_DIR/serve_smoke.err" >&2
    exit 1
  }
  sleep 0.05
done
"$BUILD_DIR/moatsim" client --socket "$SOCK" --workload all \
  --fraction 0.015625 --subchannels 2 --jobs 8 \
  --jsonl "$BUILD_DIR/perf_serve.jsonl"
wait "$SERVE_PID"
"$BUILD_DIR/moatsim" perf --workload all --fraction 0.015625 \
  --subchannels 2 --jobs 8 --jsonl "$BUILD_DIR/perf_direct.jsonl" \
  > /dev/null
diff "$BUILD_DIR/perf_direct.jsonl" "$BUILD_DIR/perf_serve.jsonl"

# Chaos smoke: the same sweep served by a daemon under an armed fault
# plan (a fifth of the cell computes throw, a twentieth of the reply
# sends drop) must still converge -- via seeded client retries -- to
# bytes identical to the clean direct run. The shared result store is
# what makes this cheap: every cell that ever finished is served from
# cache on the next attempt, so retries only replay the failures.
echo "chaos smoke: faulted daemon + client retries vs direct run"
CHAOS_SOCK="$BUILD_DIR/moatsim_chaos_smoke.sock"
CHAOS_STORE="$BUILD_DIR/chaos_store"
rm -f "$CHAOS_SOCK" "$BUILD_DIR/perf_chaos.jsonl"
rm -rf "$CHAOS_STORE"
"$BUILD_DIR/moatsim" serve --socket "$CHAOS_SOCK" \
  --result-store "$CHAOS_STORE" \
  --faults "sweep.compute@0.2:5,serve.send@0.05:6" \
  2> "$BUILD_DIR/chaos_smoke.err" &
CHAOS_PID=$!
while [ ! -S "$CHAOS_SOCK" ]; do
  kill -0 "$CHAOS_PID" 2>/dev/null || {
    echo "FATAL: chaos daemon died before listening:" >&2
    cat "$BUILD_DIR/chaos_smoke.err" >&2
    exit 1
  }
  sleep 0.05
done
"$BUILD_DIR/moatsim" client --socket "$CHAOS_SOCK" --workload all \
  --fraction 0.015625 --subchannels 2 --jobs 8 --retries 40 \
  --jsonl "$BUILD_DIR/perf_chaos.jsonl"
# The shutdown ack itself may be dropped by the armed send fault; the
# daemon still stops, so tolerate a failed bye.
"$BUILD_DIR/moatsim" client --socket "$CHAOS_SOCK" --shutdown || true
wait "$CHAOS_PID" || true
diff "$BUILD_DIR/perf_direct.jsonl" "$BUILD_DIR/perf_chaos.jsonl"

# fsck smoke: corrupt the chaos run's shards on purpose (a torn tail
# and a garbage line), then prove `moatsim store fsck` reports every
# injected corruption (non-zero exit), --repair quarantines and
# compacts, and a re-scan comes back clean.
echo "fsck smoke: deliberate shard damage, report, repair, re-scan"
CHAOS_SHARD=$(ls "$CHAOS_STORE"/shard-*.jsonl | head -n 1)
head -c -10 "$CHAOS_SHARD" > "$CHAOS_SHARD.hurt"
printf '\nnot a shard record\n' >> "$CHAOS_SHARD.hurt"
mv "$CHAOS_SHARD.hurt" "$CHAOS_SHARD"
if "$BUILD_DIR/moatsim" store fsck --dir "$CHAOS_STORE"; then
  echo "FATAL: fsck missed the injected corruption" >&2
  exit 1
fi
"$BUILD_DIR/moatsim" store fsck --dir "$CHAOS_STORE" --repair
"$BUILD_DIR/moatsim" store fsck --dir "$CHAOS_STORE"
test -s "$CHAOS_STORE/quarantine.jsonl" || {
  echo "FATAL: repair quarantined nothing" >&2
  exit 1
}
echo "determinism smoke passed"
