#!/usr/bin/env bash
# Perf-trajectory smoke: run every paper-reproduction bench at a small
# scale with structured JSONL output, then aggregate acts/sec and the
# key paper metrics into BENCH_<date>.json. CI runs this on every push
# and uploads the file as an artifact, so the repository accumulates a
# measured performance history instead of an assumed one.
#
# Usage: scripts/bench_smoke.sh [output.json]
#   BUILD_DIR            build tree with the bench binaries (default
#                        "build"; must already be built)
#   MOATSIM_BENCH_SCALE  bench scale factor (default 0.125)
#   MOATSIM_JOBS         sweep workers (default 0 = hardware)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SCALE="${MOATSIM_BENCH_SCALE:-0.125}"
OUT="${1:-BENCH_$(date +%F).json}"

if [ ! -x "$BUILD_DIR/moatsim" ]; then
    echo "error: no binaries in $BUILD_DIR; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

jsonl="$BUILD_DIR/bench_smoke.jsonl"
times="$BUILD_DIR/bench_smoke_times.txt"
rm -f "$jsonl" "$times"
: > "$jsonl"
: > "$times"

for bench in "$BUILD_DIR"/bench_*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    case "$name" in
    *.* ) continue ;; # build byproducts, not binaries
    bench_micro_ops )
        # google-benchmark-driven; times itself and does not speak
        # MOATSIM_JSONL, so it is not part of the smoke record.
        continue ;;
    esac
    echo "=== $name (scale $SCALE)"
    start_ns="$(date +%s%N)"
    if ! MOATSIM_BENCH_SCALE="$SCALE" MOATSIM_JSONL="$jsonl" \
        MOATSIM_JOBS="${MOATSIM_JOBS:-0}" \
        "$bench" > "$BUILD_DIR/$name.out" 2>&1; then
        echo "FAIL: $name" >&2
        tail -30 "$BUILD_DIR/$name.out" >&2
        exit 1
    fi
    end_ns="$(date +%s%N)"
    echo "$name $(((end_ns - start_ns) / 1000000))" >> "$times"
done

git_rev="$(git rev-parse --short HEAD 2> /dev/null || echo unknown)"
mkdir -p "$(dirname "$OUT")"
python3 scripts/bench_aggregate.py "$jsonl" "$times" "$OUT" \
    "$SCALE" "$git_rev"
echo "wrote $OUT"
