#!/usr/bin/env bash
# Static-analysis gate: the determinism linter (tools/moatlint) with
# its keylint cache-key pass, the clang thread-safety build, and a
# curated clang-tidy pass.
#
#   ./scripts/static_analysis.sh                 # full gate (CI)
#   ./scripts/static_analysis.sh --lint-only     # moatlint only
#   ./scripts/static_analysis.sh --keylint-only  # key-* rules only
#
# --lint-only builds and runs just moatlint (both its textual and its
# semantic pass), which works with any toolchain; scripts/verify.sh
# uses it so the local loop stays gcc-only. --keylint-only further
# restricts the report to the semantic key-* rules plus the
# mutate-check self-test -- the fast inner loop when editing a config
# struct or key function. The full gate additionally needs clang (and
# clang-tidy):
#
#   - a clang build of the library, CLI, and linter with the Thread
#     Safety Analysis promoted to errors (-Werror=thread-safety; see
#     MOATSIM_THREAD_SAFETY in CMakeLists.txt and
#     src/common/thread_annotations.hh), which verifies the lock
#     discipline of the ThreadPool/TraceStore/BaselineCache/
#     CoAttackEngine annotations;
#   - clang-tidy with the curated .clang-tidy profile over the files
#     changed since MOATSIM_TIDY_BASE (default origin/main; skipped
#     with a notice when no base resolves).
#
# Environment:
#   BUILD_DIR          lint build directory     (default: build)
#   CLANG_BUILD_DIR    clang side-build         (default: build-clang)
#   MOATSIM_TIDY_BASE  git base for changed-file clang-tidy
#   CLANG_CXX          clang compiler           (default: clang++)
#   CLANG_TIDY         clang-tidy binary        (default: clang-tidy)
set -euo pipefail

cd "$(dirname "$0")/.."

LINT_ONLY=0
KEYLINT_ONLY=0
for arg in "$@"; do
    case "$arg" in
    --lint-only) LINT_ONLY=1 ;;
    --keylint-only) KEYLINT_ONLY=1 ;;
    *)
        echo "usage: $0 [--lint-only|--keylint-only]" >&2
        exit 2
        ;;
    esac
done

BUILD_DIR="${BUILD_DIR:-build}"
CLANG_BUILD_DIR="${CLANG_BUILD_DIR:-build-clang}"
CLANG_CXX="${CLANG_CXX:-clang++}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"

# ------------------------------------------------------------ moatlint
# The repo-specific determinism/sealed-dispatch/cache-key linter.
# Exits non-zero on any finding without a justified suppression; the
# JSON report is a CI artifact and the SARIF report feeds GitHub code
# scanning. mutate-check then proves the keylint pass would notice a
# dropped key fold before trusting the clean run.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    # shellcheck disable=SC2086 # word-splitting the extra args is the point
    cmake -B "$BUILD_DIR" -S . ${MOATSIM_CMAKE_ARGS:-}
fi
cmake --build "$BUILD_DIR" -j --target moatlint

if [ "$KEYLINT_ONLY" -eq 1 ]; then
    echo "moatlint: key-* rules over src/ tools/ tests/"
    "$BUILD_DIR/moatlint" --root . --pass semantic \
        --json "$BUILD_DIR/moatlint.json"
    "$BUILD_DIR/moatlint" --root . --mutate-check
    echo "static analysis (keylint-only) passed"
    exit 0
fi

echo "moatlint: linting src/ tools/ tests/"
"$BUILD_DIR/moatlint" --root . \
    --json "$BUILD_DIR/moatlint.json" \
    --sarif "$BUILD_DIR/moatlint.sarif"
"$BUILD_DIR/moatlint" --root . --mutate-check

if [ "$LINT_ONLY" -eq 1 ]; then
    echo "static analysis (lint-only) passed"
    exit 0
fi

# ------------------------------------------- clang thread-safety build
# Compile (not test) everything under clang so -Werror=thread-safety
# checks the mutex annotations; the build+test clang leg re-runs the
# same flags with the full suite.
if ! command -v "$CLANG_CXX" >/dev/null; then
    echo "error: $CLANG_CXX not found (full gate needs clang;" \
        "use --lint-only without it)" >&2
    exit 2
fi
cmake -B "$CLANG_BUILD_DIR" -S . \
    -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DMOATSIM_WERROR=ON \
    ${MOATSIM_CMAKE_ARGS:-}
cmake --build "$CLANG_BUILD_DIR" -j
echo "clang thread-safety build passed"

# ---------------------------------------------------------- clang-tidy
# Curated profile (.clang-tidy) over the files this change touches.
# Headers are checked through their paired .cc (clang-tidy needs a
# translation unit) and via HeaderFilterRegex.
if ! command -v "$CLANG_TIDY" >/dev/null; then
    echo "error: $CLANG_TIDY not found (full gate needs clang-tidy)" >&2
    exit 2
fi

base="${MOATSIM_TIDY_BASE:-}"
if [ -z "$base" ] && git rev-parse --verify -q origin/main >/dev/null; then
    base=origin/main
fi
if [ -z "$base" ] ||
    ! git rev-parse --verify -q "$base^{commit}" >/dev/null; then
    # New branches (all-zero github.event.before) and clones without
    # origin/main have no diff base; the other two gates still ran.
    echo "clang-tidy: no usable base ref (set MOATSIM_TIDY_BASE);" \
        "skipping"
    exit 0
fi

mapfile -t changed < <(git diff --name-only --diff-filter=d \
    "$base"...HEAD -- 'src/*.cc' 'src/*.hh' 'tools/*.cc' 'tools/*.hh' |
    sort -u)
declare -a units=()
for f in "${changed[@]}"; do
    case "$f" in
    *.cc) units+=("$f") ;;
    *.hh)
        cc="${f%.hh}.cc"
        [ -f "$cc" ] && units+=("$cc")
        ;;
    esac
done
if [ "${#units[@]}" -eq 0 ]; then
    echo "clang-tidy: no changed translation units since $base"
else
    mapfile -t units < <(printf '%s\n' "${units[@]}" | sort -u)
    echo "clang-tidy: checking ${#units[@]} translation unit(s)" \
        "changed since $base"
    "$CLANG_TIDY" -p "$CLANG_BUILD_DIR" --quiet "${units[@]}"
fi

echo "static analysis passed"
