#!/usr/bin/env python3
"""Aggregate a bench-smoke JSONL stream into one BENCH_<date>.json.

Reads the MOATSIM_JSONL lines every bench emitted (perf cells, attack
outcomes, throughput-attack outcomes, the core-loop acts/sec record,
and the matrix-sweep throughput record) plus the per-bench wall times,
and writes a single JSON document: the perf-trajectory snapshot CI
archives on every push. Exits non-zero when a bench's measured speedup
falls below the bar it recorded (core_loop >= 1.3x, sweep_scale >=
2x), so bench-smoke is a gate, not just a log. Stdlib only.
"""

import datetime
import json
import sys


def main() -> int:
    if len(sys.argv) != 6:
        print(
            "usage: bench_aggregate.py JSONL TIMES OUT SCALE GITREV",
            file=sys.stderr,
        )
        return 2
    jsonl_path, times_path, out_path, scale, git_rev = sys.argv[1:]

    rows = []
    with open(jsonl_path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                rows.append(json.loads(line))

    bench_ms = {}
    with open(times_path, encoding="utf-8") as fh:
        for line in fh:
            name, ms = line.split()
            bench_ms[name] = int(ms)

    perf = [r for r in rows if r.get("kind") == "perf"]
    attacks = [r for r in rows if r.get("kind") == "attack"]
    tput = [r for r in rows if r.get("kind") == "throughput_attack"]
    coattack = [r for r in rows if r.get("kind") == "coattack"]
    core = next((r for r in rows if r.get("kind") == "core_loop"), None)
    sweep = next((r for r in rows if r.get("kind") == "sweep_scale"), None)

    def mean(values):
        vals = list(values)
        return sum(vals) / len(vals) if vals else 0.0

    doc = {
        "schema": "moatsim-bench-smoke-v1",
        "date": datetime.date.today().isoformat(),
        "git": git_rev,
        "scale": float(scale),
        "core_loop": core,
        # Matrix-sweep pipeline throughput (bench_sweep_scale): the raw
        # record plus the two headline numbers tooling keys on.
        "sweep_scale": sweep,
        "sweep_cells_per_sec": (
            sweep["opt_cells_per_sec"] if sweep else None
        ),
        "trace_store_hit_rate": (
            sweep["trace_store_hit_rate"] if sweep else None
        ),
        "perf": {
            "cells": len(perf),
            "total_acts": sum(r["acts"] for r in perf),
            "mean_norm_perf": mean(r["norm_perf"] for r in perf),
            "worst_norm_perf": min(
                (r["norm_perf"] for r in perf), default=1.0
            ),
            "mean_alerts_per_refi": mean(
                r["alerts_per_refi"] for r in perf
            ),
            "subchannel_cells": sum(
                1 for r in perf if len(r.get("sc_acts", [])) > 1
            ),
        },
        "attack": {
            "cells": len(attacks),
            "worst_max_hammer": max(
                (r["max_hammer"] for r in attacks), default=0
            ),
        },
        "throughput_attack": {
            "cells": len(tput),
            "worst_loss_fraction": max(
                (r["loss_fraction"] for r in tput), default=0.0
            ),
        },
        # Adversary-under-load cells: the attacker's residual hammer
        # on the shared system and the victims' worst/mean slowdown.
        "coattack": {
            "cells": len(coattack),
            "worst_attacker_max_hammer": max(
                (r["attacker_max_hammer"] for r in coattack), default=0
            ),
            "worst_victim_slowdown": max(
                (r["victim_slowdown"] for r in coattack), default=1.0
            ),
            "mean_victim_slowdown": mean(
                r["victim_slowdown"] for r in coattack
            ),
        },
        "bench_ms": bench_ms,
        "total_ms": sum(bench_ms.values()),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # Speedup gates: every bench that measures an optimized path
    # against a preserved reference path emits its own bar; the smoke
    # run fails when a recorded speedup regresses below it.
    failures = []
    for name, row in (("core_loop", core), ("sweep_scale", sweep)):
        if row is None or "bar" not in row:
            continue
        if row["speedup"] < row["bar"]:
            failures.append(
                f"{name}: speedup {row['speedup']:.2f}x is below its "
                f"recorded bar {row['bar']:.2f}x"
            )
    if failures:
        for message in failures:
            print(f"bench gate FAILED -- {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
