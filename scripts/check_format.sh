#!/usr/bin/env bash
# Format gate for CI and pre-commit use.
#
# Blocking: the mechanical invariants every source file must satisfy
# (no tabs, no trailing whitespace, no CRLF line endings, <= 80
# columns) -- these are enforceable without any particular
# clang-format version and the tree is kept clean of them.
#
# Advisory (by default): clang-format drift against .clang-format.
# Different clang-format majors disagree on edge cases, so the drift
# report only fails the job when CLANGFORMAT_STRICT=1 (CI pins
# clang-format-18 for that). Apply fixes with scripts/format.sh and
# record format-only commits in .git-blame-ignore-revs.
set -euo pipefail

cd "$(dirname "$0")/.."

# C++ sources and headers; golden data files and docs are exempt from
# the column limit.
mapfile -t files < <(find src tests bench examples tools \
    \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) | sort)

fail=0

check() {
    local label="$1" pattern="$2"
    local hits
    hits=$(grep -nP "$pattern" "${files[@]}" || true)
    if [ -n "$hits" ]; then
        echo "FORMAT: $label:"
        echo "$hits" | head -20
        fail=1
    fi
}

check "tab characters (use 4 spaces)" '\t'
check "trailing whitespace" ' +$'
check "CRLF line endings" '\r'
check "lines over 80 columns" '^.{81,}'

# Shell scripts: executable bit + bash shebang.
for s in scripts/*.sh; do
    if [ ! -x "$s" ]; then
        echo "FORMAT: $s is not executable"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "mechanical format checks FAILED"
    exit 1
fi
echo "mechanical format checks passed (${#files[@]} files)"

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
    if "$CLANG_FORMAT" --dry-run -Werror "${files[@]}" 2> /dev/null; then
        echo "clang-format: no drift"
    else
        echo "clang-format drift detected ($("$CLANG_FORMAT" --version)):"
        "$CLANG_FORMAT" --dry-run "${files[@]}" 2>&1 | head -40 || true
        if [ "${CLANGFORMAT_STRICT:-0}" = "1" ]; then
            echo "CLANGFORMAT_STRICT=1: failing"
            exit 1
        fi
        echo "(advisory; run scripts/format.sh and commit the fixup to"
        echo " .git-blame-ignore-revs, or set CLANGFORMAT_STRICT=1)"
    fi
else
    echo "clang-format not found; skipped the drift report"
fi
