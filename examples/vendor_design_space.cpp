/**
 * @file
 * DRAM-vendor design-space walk: you manufacture chips with a known
 * Rowhammer threshold and must pick a MOAT configuration (ATH, ETH,
 * ABO level) that is provably safe with the least overhead.
 *
 * For each candidate the example reports the Appendix-A tolerated
 * threshold, the SRAM cost, and a quick measured slowdown on a
 * representative hot workload (roms, the paper's worst case).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/ratchet_model.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    const uint32_t chip_trh = 120; // your silicon's measured threshold
    std::printf("Design-space walk for chips with TRH = %u\n\n",
                chip_trh);

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625; // quick evaluation runs
    sim::Experiment exp(ec);
    const auto &hot = workload::findWorkload("roms");

    struct Candidate
    {
        uint32_t ath;
        int level;
    };
    const std::vector<Candidate> candidates = {
        {32, 1}, {64, 1}, {64, 2}, {96, 1}, {128, 1},
    };

    TablePrinter t({"design", "tolerated TRH", "safe for chip?",
                    "SRAM B/bank", "roms slowdown", "ALERTs/tREFI"});
    for (const auto &c : candidates) {
        const auto bound =
            analysis::ratchetBound(ec.tracegen.timing, c.ath, c.level);

        const auto spec = mitigation::Registry::parse(
            "moat:ath=" + std::to_string(c.ath) +
            ",eth=" + std::to_string(c.ath / 2) +
            ",entries=" + std::to_string(c.level));
        const auto perf =
            exp.runWorkload(hot, spec, static_cast<abo::Level>(c.level));

        t.addRow({"MOAT-L" + std::to_string(c.level) +
                      " ATH=" + std::to_string(c.ath),
                  formatFixed(bound.safeTrh, 0),
                  bound.safeTrh <= chip_trh ? "yes" : "NO",
                  std::to_string(spec.sramBytesPerBank()),
                  formatPercent(1.0 - perf.normPerf),
                  formatFixed(perf.alertsPerRefi, 4)});
    }
    t.print(std::cout);

    std::printf("\nPick the largest safe ATH: it minimizes ALERTs (and "
                "thus slowdown) while the Ratchet bound stays below "
                "your TRH.\n");
    return 0;
}
