/**
 * @file
 * moatsim quickstart: build a MOAT-protected DDR5 sub-channel, hammer
 * a row past the ALERT threshold, and watch the PRAC+ABO machinery
 * mitigate it.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "analysis/ratchet_model.hh"
#include "mitigation/registry.hh"
#include "subchannel/subchannel.hh"

using namespace moatsim;

int
main()
{
    // 1. Configure a DDR5 sub-channel with the paper's Table-1 timings
    //    (the defaults) and one MOAT instance per bank. Any registered
    //    design works here: try "panopticon" or "ideal-prc".
    subchannel::SubChannelConfig config;
    config.numBanks = 4; // keep the demo small

    const auto spec =
        mitigation::Registry::parse("moat"); // ETH=32, ATH=64, MOAT-L1
    const mitigation::MoatConfig moat = mitigation::moatConfigOf(spec);
    subchannel::SubChannel channel(config, spec.factory());

    std::printf("Sub-channel: %u banks, %u rows each, tRC %.0f ns\n",
                channel.numBanks(), channel.bank(0).numRows(),
                toNs(channel.timing().tRC));
    std::printf("MOAT: %s, %u bytes SRAM per bank\n\n",
                channel.mitigator(0).name().c_str(),
                channel.mitigator(0).sramBytesPerBank());

    // 2. Hammer one row. Every activation increments the row's PRAC
    //    counter; the SecurityMonitor independently tracks the ground
    //    truth damage on the neighbouring victim rows.
    const BankId bank = 0;
    const RowId aggressor = 30000;
    for (int i = 0; i < 100; ++i)
        channel.activate(bank, aggressor);
    channel.advanceTo(channel.now() + fromNs(1000)); // drain the ALERT

    std::printf("After 100 activations of row %u:\n", aggressor);
    std::printf("  ALERTs asserted:           %lu\n",
                static_cast<unsigned long>(channel.abo().alertCount()));
    std::printf("  PRAC counter now:          %u (reset by mitigation)\n",
                channel.bank(bank).counter(aggressor));
    std::printf("  max ACTs w/o mitigation:   %u (the security metric)\n",
                channel.security(bank).maxHammer());
    std::printf("  victim damage remaining:   %u\n\n",
                channel.security(bank).damage(aggressor + 1));

    // 3. The analytical guarantee: with ATH=64 at ABO level 1, no
    //    attacker -- not even the Ratchet pattern -- can exceed:
    const auto bound =
        analysis::ratchetBound(channel.timing(), moat.ath, 1);
    std::printf("Provable bound for this configuration: no row can "
                "reach %.0f activations\n(paper: MOAT with ATH=64 "
                "safely tolerates a Rowhammer threshold of 99).\n",
                bound.safeTrh);
    return 0;
}
