/**
 * @file
 * Capacity-planning scenario: a fleet operator wants to know what
 * enabling MOAT-protected DIMMs costs on real workloads, and whether a
 * co-located adversary can weaponize ALERTs into denial of service.
 */

#include <cstdio>
#include <iostream>

#include "analysis/throughput_model.hh"
#include "attacks/tsa.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

using namespace moatsim;

int
main()
{
    std::printf("Datacenter view: MOAT (ATH 64) on mixed tenant "
                "workloads\n\n");

    sim::ExperimentConfig ec;
    ec.tracegen.windowFraction = 0.0625;
    sim::Experiment exp(ec); // default mitigator: "moat"

    // A representative mix: streaming HPC, pointer chasing, graph
    // analytics, and a nearly idle service.
    TablePrinter t({"tenant workload", "slowdown", "ALERTs/tREFI",
                    "mitigations/bank/tREFW"});
    for (const char *name : {"bwaves", "mcf", "roms", "pr", "x264"}) {
        const auto r = exp.runWorkload(workload::findWorkload(name),
                                       ec.mitigator, ec.aboLevel);
        t.addRow({name, formatPercent(1.0 - r.normPerf),
                  formatFixed(r.alertsPerRefi, 4),
                  formatFixed(r.mitigationsPerBankPerRefw, 0)});
    }
    t.print(std::cout);

    // Worst-case adversarial tenant: the TSA pattern.
    std::printf("\nAdversarial tenant (Torrent-of-Staggered-ALERT):\n");
    attacks::PerfAttackConfig atk;
    atk.numBanks = 17; // tFAW limit
    atk.cycles = 20;
    const auto tsa = attacks::runTsa(atk);
    const auto model =
        analysis::tsaAttack(ec.tracegen.timing, 64, 5, 17, 1);
    std::printf("  measured channel throughput loss: %s "
                "(paper unit-model: %s)\n",
                formatPercent(tsa.lossFraction, 1).c_str(),
                formatPercent(model.lossFraction, 1).c_str());
    std::printf("  verdict (paper Section 7.3): comparable to ordinary "
                "row-buffer-conflict contention -- an annoyance, not a "
                "new denial-of-service class.\n");
    return 0;
}
