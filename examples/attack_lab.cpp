/**
 * @file
 * Red-team lab: run the paper's attack suite against each in-DRAM
 * mitigation and report who survives.
 *
 * Scenario: you are evaluating a DRAM part whose datasheet claims a
 * Rowhammer threshold of 500. Which mitigation actually holds?
 */

#include <cstdio>

#include "analysis/ratchet_model.hh"
#include "attacks/attack.hh"
#include "mitigation/registry.hh"

using namespace moatsim;

namespace
{

void
verdict(const char *design, const char *attack, uint32_t max_acts,
        uint32_t claimed_trh)
{
    std::printf("  %-28s vs %-22s max ACTs = %5u  -> %s\n", design,
                attack, max_acts,
                max_acts >= claimed_trh ? "BIT-FLIPS (broken)"
                                        : "holds");
}

} // namespace

int
main()
{
    const uint32_t claimed_trh = 500;
    std::printf("Attack lab: device claims to tolerate TRH = %u\n\n",
                claimed_trh);

    dram::TimingParams timing;

    // Each run is the same call shape: a pattern name plus a registered
    // mitigator spec -- the registry makes every defence addressable.
    const struct
    {
        const char *design;
        const char *spec;
        const char *pattern;
    } plan[] = {
        // 1. Panopticon (threshold 128, 8-entry queue) vs Jailbreak.
        {"Panopticon (gradual)", "panopticon", "jailbreak"},
        // 2. Drain-all Panopticon vs refresh postponement.
        {"Panopticon (drain-all)", "panopticon:drain-all=true",
         "postponement"},
        // 3. The Section-9 repaired queue. The tuned jailbreak driver
        //    targets the original address-only design, so the repaired
        //    queue is probed with the generic round-robin pattern.
        {"Panopticon+counters", "panopticon-counter", "round-robin"},
        // 4. The transparent per-row-counter ideal vs feinting.
        {"IdealPRC (no ALERT)", "ideal-prc", "feinting"},
        // 5. MOAT (ATH 64) vs the Ratchet attack -- the strongest
        //    pattern the PRAC+ABO framework admits.
        {"MOAT-L1 (ETH 32, ATH 64)", "moat", "ratchet"},
    };
    for (const auto &p : plan) {
        attacks::AttackConfig cfg;
        cfg.timing = timing;
        cfg.pattern = p.pattern;
        cfg.trials = 128; // postponement alignment sweep, kept small
        const auto r =
            attacks::runAttack(cfg, mitigation::Registry::parse(p.spec));
        verdict(p.design, p.pattern, r.maxHammer, claimed_trh);
    }

    std::printf("\nMOAT's guarantee is analytic, not just empirical: "
                "the Appendix-A bound for ATH 64 is %.0f ACTs, so any "
                "device with TRH above that is safe.\n",
                analysis::ratchetBound(timing, 64, 1).safeTrh);
    std::printf("Rule of thumb from the paper: pick the largest ATH "
                "whose bound stays below your chips' TRH; ATH 64 covers "
                "TRH >= 99, ATH 128 covers TRH >= 161.\n");
    return 0;
}
