/**
 * @file
 * Red-team lab: run the paper's attack suite against each in-DRAM
 * mitigation and report who survives.
 *
 * Scenario: you are evaluating a DRAM part whose datasheet claims a
 * Rowhammer threshold of 500. Which mitigation actually holds?
 */

#include <cstdio>

#include "analysis/ratchet_model.hh"
#include "attacks/jailbreak.hh"
#include "attacks/postponement.hh"
#include "attacks/ratchet.hh"

using namespace moatsim;

namespace
{

void
verdict(const char *design, const char *attack, uint32_t max_acts,
        uint32_t claimed_trh)
{
    std::printf("  %-28s vs %-22s max ACTs = %5u  -> %s\n", design,
                attack, max_acts,
                max_acts >= claimed_trh ? "BIT-FLIPS (broken)"
                                        : "holds");
}

} // namespace

int
main()
{
    const uint32_t claimed_trh = 500;
    std::printf("Attack lab: device claims to tolerate TRH = %u\n\n",
                claimed_trh);

    dram::TimingParams timing;

    // 1. Panopticon (threshold 128, 8-entry queue) vs Jailbreak.
    {
        attacks::JailbreakConfig cfg;
        const auto r = attacks::runDeterministicJailbreak(cfg);
        verdict("Panopticon (gradual)", "Jailbreak", r.maxHammer,
                claimed_trh);
    }

    // 2. Drain-all Panopticon vs refresh postponement.
    {
        attacks::PostponementConfig cfg;
        cfg.trials = 128;
        const auto r = attacks::runRefreshPostponement(cfg);
        verdict("Panopticon (drain-all)", "REF postponement",
                r.maxHammer, claimed_trh);
    }

    // 3. MOAT (ATH 64) vs the Ratchet attack -- the strongest pattern
    //    the PRAC+ABO framework admits.
    {
        attacks::RatchetConfig cfg;
        cfg.timing = timing;
        const auto r = attacks::runRatchet(cfg);
        verdict("MOAT-L1 (ETH 32, ATH 64)", "Ratchet", r.maxHammer,
                claimed_trh);
    }

    std::printf("\nMOAT's guarantee is analytic, not just empirical: "
                "the Appendix-A bound for ATH 64 is %.0f ACTs, so any "
                "device with TRH above that is safe.\n",
                analysis::ratchetBound(timing, 64, 1).safeTrh);
    std::printf("Rule of thumb from the paper: pick the largest ATH "
                "whose bound stays below your chips' TRH; ATH 64 covers "
                "TRH >= 99, ATH 128 covers TRH >= 161.\n");
    return 0;
}
